#pragma once
// Fixed-size thread pool used to run independent experiment work —
// sweep cells and the replications inside them — in parallel.
// Determinism is preserved by seeding each replication from its index,
// never from thread identity or scheduling order.
//
// Nested use is supported: parallel_for may be called from inside a pool
// worker (the sweep executor parallelises cells, and each cell's
// replications call parallel_for again). Waiters never block idle —
// they execute queued jobs while waiting (help-first scheduling), so a
// full pool of blocked outer loops cannot deadlock the inner ones.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gasched::util {

/// A simple work-queue thread pool.
///
/// Tasks are arbitrary `void()` callables; `submit` returns a future for
/// completion/exception propagation. `parallel_for` provides a blocked
/// index-range helper for embarrassingly parallel sweeps.
class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn`; the returned future resolves when it completes and
  /// rethrows any exception it raised.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [begin, end) across the pool and blocks
  /// until all iterations complete. Exceptions from iterations are
  /// rethrown (first one wins). Safe to call from a pool worker: the
  /// calling thread drains iterations itself and, while waiting for
  /// helpers, keeps executing other queued jobs instead of blocking.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Pops and runs one queued job on the calling thread, if any is
  /// pending. Returns false when the queue was empty. This is what lets
  /// blocked waiters help instead of deadlocking nested submissions.
  bool try_run_one();

 private:
  struct Job {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Job> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Global pool shared by the experiment harness (lazily constructed).
ThreadPool& global_pool();

}  // namespace gasched::util
