#include "util/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gasched::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3) {
        throw std::runtime_error("Config: bad section at line " +
                                 std::to_string(line_no));
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: expected key = value at line " +
                               std::to_string(line_no));
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key at line " +
                               std::to_string(line_no));
    }
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

Config Config::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Config::load: cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::vector<std::pair<std::string, std::string>> Config::section(
    const std::string& name) const {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string prefix = name + ".";
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first.substr(prefix.size()), it->second);
  }
  return out;
}

std::string Config::get(const std::string& key,
                        const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: bad numeric value for " + key + ": " +
                             *v);
  }
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: bad integer value for " + key + ": " +
                             *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::runtime_error("Config: bad boolean value for " + key + ": " +
                           *v);
}

}  // namespace gasched::util
