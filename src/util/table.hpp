#pragma once
// ASCII table rendering for bench/exp output. Each bench binary prints the
// same rows/series the paper's figure reports, as a human-readable table
// plus (optionally) a CSV file.

#include <ostream>
#include <string>
#include <vector>

namespace gasched::util {

/// Simple right-aligned ASCII table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row (padded/truncated to the header width).
  void add_row(std::vector<std::string> cells);

  /// Convenience: appends a row whose first cell is a label and the rest
  /// are formatted doubles.
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `prec` significant digits for table display.
std::string fmt(double v, int prec = 5);

}  // namespace gasched::util
