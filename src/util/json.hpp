#pragma once
// Minimal JSON writer for exporting experiment results.
//
// Deliberately write-only: the library never needs to parse JSON, only to
// emit machine-readable result files next to the CSV exports. The writer
// is a small streaming builder with correct string escaping and
// locale-independent number formatting (always '.' decimal point, so
// files are identical regardless of the host locale).

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace gasched::util {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Formats a double as JSON: shortest round-trip representation, with
/// non-finite values (which JSON cannot express) emitted as null.
std::string json_number(double v);

/// Streaming JSON builder.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("makespan").number(123.4);
///   w.key("runs").begin_array().number(1).number(2).end_array();
///   w.end_object();
///   os << w.str();
///
/// The builder tracks nesting and comma placement; mismatched begin/end
/// calls throw std::logic_error.
class JsonWriter {
 public:
  /// Begins an object ({). Returns *this for chaining.
  JsonWriter& begin_object();
  /// Ends the innermost object (}).
  JsonWriter& end_object();
  /// Begins an array ([).
  JsonWriter& begin_array();
  /// Ends the innermost array (]).
  JsonWriter& end_array();
  /// Emits an object key; must be directly inside an object.
  JsonWriter& key(const std::string& k);
  /// Emits a string value.
  JsonWriter& string(const std::string& v);
  /// Emits a numeric value (null for non-finite).
  JsonWriter& number(double v);
  /// Emits an integer value.
  JsonWriter& number(std::int64_t v);
  /// Emits an unsigned integer value.
  JsonWriter& number(std::size_t v);
  /// Emits a boolean value.
  JsonWriter& boolean(bool v);
  /// Emits null.
  JsonWriter& null();

  /// The document so far. Must be called with all containers closed.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };
  void before_value();
  std::ostringstream out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // first element in each open container
  bool expecting_value_ = false;  // a key was just written
  bool done_ = false;
};

}  // namespace gasched::util
