#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gasched::util {

RunningStats::RunningStats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  touched_ = true;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  for (double x : xs) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile_sorted(sorted, 50.0);
  s.ci95 = rs.ci95_halfwidth();
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace gasched::util
