#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gasched::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // 17 significant digits round-trips any double; trim via %.17g and let
  // readers re-shorten. snprintf with "C"-style %g never emits locale
  // decimal commas for the "C" locale assumption used across the library.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!stack_.empty() && stack_.back() == Frame::kObject &&
      !expecting_value_) {
    throw std::logic_error("JsonWriter: value inside object requires key()");
  }
  if (!stack_.empty() && stack_.back() == Frame::kArray) {
    if (!first_.back()) out_ << ",";
    first_.back() = false;
  }
  expecting_value_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << "{";
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ << "}";
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << "[";
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ << "]";
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (done_ || stack_.empty() || stack_.back() != Frame::kObject ||
      expecting_value_) {
    throw std::logic_error("JsonWriter: key() only directly inside objects");
  }
  if (!first_.back()) out_ << ",";
  first_.back() = false;
  out_ << "\"" << json_escape(k) << "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::string(const std::string& v) {
  before_value();
  out_ << "\"" << json_escape(v) << "\"";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::number(double v) {
  before_value();
  out_ << json_number(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::number(std::int64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::number(std::size_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::boolean(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unclosed containers in str()");
  }
  return out_.str();
}

}  // namespace gasched::util
