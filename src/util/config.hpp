#pragma once
// Minimal INI-style configuration files for declarative experiment
// scenarios:
//
//     # comment
//     [cluster]
//     processors = 50
//     rate_lo = 10
//
// Sections become key prefixes ("cluster.processors"). Used by the
// run_scenario example so experiments can be shared as text files.

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gasched::util {

/// Parsed configuration: flat "section.key" → value map.
class Config {
 public:
  Config() = default;

  /// Parses INI-style text. Throws std::runtime_error on malformed lines
  /// (anything that is not blank, comment, [section], or key = value).
  static Config parse(const std::string& text);

  /// Reads and parses a file. Throws std::runtime_error on I/O failure.
  static Config load(const std::filesystem::path& path);

  /// Raw value lookup ("section.key", or just "key" for the implicit
  /// top-level section).
  std::optional<std::string> raw(const std::string& key) const;

  /// Typed getters with defaults (return fallback on missing key; throw
  /// std::runtime_error on unparseable values).
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// True when the key is present.
  bool has(const std::string& key) const;

  /// All key/value pairs of one section, keys stripped of the section
  /// prefix ("[scheduler] batch_size = 77" → {"batch_size", "77"}), in
  /// lexicographic key order. Unknown sections yield an empty vector.
  std::vector<std::pair<std::string, std::string>> section(
      const std::string& name) const;

  /// Number of key/value pairs.
  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gasched::util
