#pragma once
// First-order exponential smoothing (the paper's Γ function, §3.6).
//
// A smoothing function finds a single representative value for a sequence
// of observations. For observations a1, a2, ... the representative value is
//
//     Γ_i = Γ_{i-1} + ν (a_i − Γ_{i-1}),   Γ_0 = a_1,
//
// where ν ∈ [0, 1] controls how strongly recent observations dominate:
// ν = 0 freezes the first observation, ν = 1 tracks the latest exactly.
// The scheduler uses Γ to estimate per-link communication costs, processor
// availability, and the time until the first processor becomes idle.

#include <algorithm>
#include <cstddef>

namespace gasched::util {

/// Streaming exponential smoother implementing the paper's Γ recurrence.
class Smoother {
 public:
  /// Creates a smoother with smoothing factor `nu`, clamped to [0, 1].
  explicit Smoother(double nu = 0.5) noexcept
      : nu_(std::clamp(nu, 0.0, 1.0)) {}

  /// Feeds the next observation and returns the updated representative
  /// value. The first observation initialises Γ directly (Γ_0 = a_1).
  double observe(double value) noexcept {
    if (count_ == 0) {
      gamma_ = value;
    } else {
      gamma_ += nu_ * (value - gamma_);
    }
    ++count_;
    return gamma_;
  }

  /// Current representative value Γ. Returns `fallback` before any
  /// observation has been made.
  double value_or(double fallback) const noexcept {
    return count_ == 0 ? fallback : gamma_;
  }

  /// Current representative value Γ (0 before any observation).
  double value() const noexcept { return gamma_; }

  /// Number of observations fed so far.
  std::size_t count() const noexcept { return count_; }

  /// True once at least one observation has been made.
  bool primed() const noexcept { return count_ > 0; }

  /// Smoothing factor ν.
  double nu() const noexcept { return nu_; }

  /// Resets to the unprimed state.
  void reset() noexcept {
    gamma_ = 0.0;
    count_ = 0;
  }

 private:
  double nu_;
  double gamma_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace gasched::util
