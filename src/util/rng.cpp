#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace gasched::util {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng::Rng(std::uint64_t seed) noexcept : gen_(seed), seed_(seed) {}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix (seed, stream) through SplitMix64 twice to derive a well-separated
  // child seed; identical (seed, stream) pairs always yield the same child.
  std::uint64_t s = seed_ ^ (0xA0761D6478BD642FULL + stream);
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  return Rng(a ^ rotl(b, 23) ^ stream);
}

std::uint64_t Rng::next_u64() noexcept { return gen_(); }

double Rng::uniform01() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(gen_());  // full range
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `range` representable in 64 bits.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t draw;
  do {
    draw = gen_();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::normal_truncated(double mean, double stddev, double lo) noexcept {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  // Pathological (lo far into the upper tail): reflect to guarantee progress.
  return lo + std::abs(normal(0.0, stddev));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > threshold);
    return k - 1;
  }
  // PTRS (Hörmann 1993) transformed rejection for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform01() - 0.5;
    const double v = uniform01();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    const double log_v = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs = k * std::log(mean) - mean - std::lgamma(k + 1.0);
    if (log_v <= rhs) return static_cast<std::uint64_t>(k);
  }
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace gasched::util
