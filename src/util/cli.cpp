#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>

namespace gasched::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";
    }
    flags_[name] = value;
  }
}

bool Cli::has(const std::string& name) const { return flags_.contains(name); }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} ? out : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

bool bench_full_scale() {
  const auto v = env_string("GASCHED_BENCH_SCALE");
  return v && (*v == "full" || *v == "FULL" || *v == "paper");
}

}  // namespace gasched::util
