#pragma once
// Minimal CSV writing/reading used by the bench harness to emit figure
// data series and by the workload module to persist task traces.

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace gasched::util {

/// Streaming CSV writer. Cells are quoted only when required (comma,
/// quote, or newline present). The writer flushes on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing — truncating by default, appending when
  /// `append` is true (the resume path of the streaming result sinks).
  /// Throws std::runtime_error on failure.
  explicit CsvWriter(const std::filesystem::path& path, bool append = false);

  /// Writes one row of cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles with full precision.
  void row_numeric(const std::vector<double>& cells);

  /// Flushes buffered rows to disk (crash-safety point for streaming
  /// writers that append as results complete).
  void flush();

  /// Underlying path.
  const std::filesystem::path& path() const noexcept { return path_; }

  /// Quotes `cell` exactly as row() would (used by format_csv_row).
  static std::string escape(std::string_view cell);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
};

/// Formats one row of cells exactly as CsvWriter would write it (no
/// trailing newline). Lets resume scans compare an existing file's
/// header byte-for-byte against the schema a fresh writer would emit.
std::string format_csv_row(const std::vector<std::string>& cells);

/// Parses one CSV line into cells, honouring double-quote escaping.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Parses `text` as a whole-string unsigned decimal into `out`.
/// Returns false on any non-digit content (the strict form the sink
/// resume scans and shard mergers use to validate cell-index fields).
bool parse_size_t(std::string_view text, std::size_t& out);

/// Reads an entire CSV file into rows of cells. Throws on open failure.
std::vector<std::vector<std::string>> read_csv(
    const std::filesystem::path& path);

/// Formats a double compactly (shortest round-trip-ish, fixed fallback).
std::string format_double(double v);

}  // namespace gasched::util
