#pragma once
// Minimal CSV writing/reading used by the bench harness to emit figure
// data series and by the workload module to persist task traces.

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace gasched::util {

/// Streaming CSV writer. Cells are quoted only when required (comma,
/// quote, or newline present). The writer flushes on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::filesystem::path& path);

  /// Writes one row of cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles with full precision.
  void row_numeric(const std::vector<double>& cells);

  /// Flushes buffered rows to disk (crash-safety point for streaming
  /// writers that append as results complete).
  void flush();

  /// Underlying path.
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static std::string escape(std::string_view cell);

  std::filesystem::path path_;
  std::ofstream out_;
};

/// Parses one CSV line into cells, honouring double-quote escaping.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Reads an entire CSV file into rows of cells. Throws on open failure.
std::vector<std::vector<std::string>> read_csv(
    const std::filesystem::path& path);

/// Formats a double compactly (shortest round-trip-ish, fixed fallback).
std::string format_double(double v);

}  // namespace gasched::util
