#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace gasched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  Job job;
  job.fn = std::move(fn);
  std::future<void> fut = job.done.get_future();
  {
    std::lock_guard lk(mu_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::try_run_one() {
  Job job;
  {
    std::lock_guard lk(mu_);
    if (jobs_.empty()) return false;
    job = std::move(jobs_.front());
    jobs_.pop();
  }
  try {
    job.fn();
    job.done.set_value();
  } catch (...) {
    job.done.set_exception(std::current_exception());
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ with drained queue
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    try {
      job.fn();
      job.done.set_value();
    } catch (...) {
      job.done.set_exception(std::current_exception());
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (n == 1) {
    fn(begin);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex err_mu;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  const std::size_t lanes = std::min(n, size() + 1);
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  // The calling thread participates too, so a pool of size 1 still makes
  // progress even when parallel_for is invoked from a pool worker.
  for (std::size_t i = 1; i < lanes; ++i) futs.push_back(submit(drain));
  drain();
  // Help-first wait: a worker blocked here would starve jobs submitted by
  // nested parallel_for calls (every worker waiting on queued jobs that
  // only workers can run). Executing queued jobs while waiting makes the
  // nesting deadlock-free — the helpers we are waiting on are no-ops once
  // the shared counter is exhausted, so this terminates.
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  // GASCHED_THREADS pins the pool width (sweep determinism does not
  // depend on it, but wall-clock comparisons and CI sanitizer runs do).
  static ThreadPool pool([] {
    const char* env = std::getenv("GASCHED_THREADS");
    if (env != nullptr && *env != '\0') {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace gasched::util
