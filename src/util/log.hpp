#pragma once
// Lightweight leveled logging. Off by default in benches/tests; the
// simulator uses it for trace-level debugging of the event protocol.

#include <mutex>
#include <sstream>
#include <string>

namespace gasched::util {

/// Log severity levels, in increasing order of importance.
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the process-wide minimum level that will be emitted.
LogLevel log_level() noexcept;

/// Sets the process-wide minimum level. Also settable via the
/// GASCHED_LOG environment variable (trace|debug|info|warn|error|off).
void set_log_level(LogLevel level) noexcept;

/// Emits a message at `level` to stderr (thread-safe, line-buffered).
void log_message(LogLevel level, const std::string& msg);

/// Human-readable name of a level.
const char* log_level_name(LogLevel level) noexcept;

namespace detail {
/// Stream-style accumulator used by the GASCHED_LOG_* macros.
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace gasched::util

#define GASCHED_LOG(level)                                   \
  if (static_cast<int>(level) <                              \
      static_cast<int>(::gasched::util::log_level())) {      \
  } else                                                     \
    ::gasched::util::detail::LogLine(level)

#define GASCHED_LOG_TRACE GASCHED_LOG(::gasched::util::LogLevel::kTrace)
#define GASCHED_LOG_DEBUG GASCHED_LOG(::gasched::util::LogLevel::kDebug)
#define GASCHED_LOG_INFO GASCHED_LOG(::gasched::util::LogLevel::kInfo)
#define GASCHED_LOG_WARN GASCHED_LOG(::gasched::util::LogLevel::kWarn)
#define GASCHED_LOG_ERROR GASCHED_LOG(::gasched::util::LogLevel::kError)
