#pragma once
// Spin-then-park handshake between one sleeper and its wakers.
//
// The serving runtime's workers spin on their SPSC inbox while loaded and
// must fall back to a blocking wait when idle — without ever losing a
// wakeup, and without the producer paying a mutex on the steady-state
// dispatch path. Parker packages the standard store-buffer-safe protocol:
//
//   sleeper:                          waker (after publishing work):
//     prepare();   // flag + fence      notify();  // fence + flag check
//     if (work) { cancel(); ... }
//     park();      // blocks
//
// Both sides fence seq_cst between "write my side" and "read the other
// side" (the Dekker pattern), so at least one of them observes the other:
// either the sleeper sees the published work and cancels, or the waker
// sees the park intent and takes the (idle-path-only) mutex to notify.
// The steady-state cost for the waker when nobody is parked is one fence
// and one relaxed load — no mutex, no syscall.

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace gasched::util {

class Parker {
 public:
  /// Sleeper: announce park intent. Follow with a re-check of the wait
  /// condition, then either cancel() or park().
  void prepare() noexcept {
    parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Sleeper: abort a prepare() because work turned out to be available.
  void cancel() noexcept {
    parked_.store(false, std::memory_order_relaxed);
  }

  /// Sleeper: block until a waker clears the park flag. Must be preceded
  /// by prepare(); spurious wakeups are absorbed by the predicate.
  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !parked_.load(std::memory_order_relaxed); });
  }

  /// Waker: wake the sleeper iff it is parked (or about to park). Cheap
  /// when nobody is parked: one fence + one relaxed load.
  void notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed)) {
      {
        // Clearing the flag under the mutex pins the sleeper either
        // before its predicate check (sees the cleared flag) or inside
        // wait() (receives the notify) — no lost-wakeup window.
        std::lock_guard<std::mutex> lk(mu_);
        parked_.store(false, std::memory_order_relaxed);
      }
      cv_.notify_one();
    }
  }

 private:
  std::atomic<bool> parked_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace gasched::util
