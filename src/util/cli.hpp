#pragma once
// Tiny command-line flag parser shared by the bench binaries and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name` forms plus
// environment-variable overrides so the whole bench suite can be scaled
// with GASCHED_BENCH_SCALE=full without editing invocations.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gasched::util {

/// Parsed command line: flag map plus positional arguments.
class Cli {
 public:
  /// Parses argv. Unknown flags are retained (queryable); malformed input
  /// never throws — a flag without a value is treated as boolean "true".
  Cli(int argc, const char* const* argv);

  /// Program name (argv[0], may be empty).
  const std::string& program() const noexcept { return program_; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True if --name was present.
  bool has(const std::string& name) const;

  /// String flag with default.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer flag with default (returns fallback on parse failure).
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double flag with default (returns fallback on parse failure).
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or value in {1,true,yes,on}.
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Returns environment variable `name` if set and non-empty.
std::optional<std::string> env_string(const std::string& name);

/// True when GASCHED_BENCH_SCALE is "full" — benches then use paper-scale
/// parameters (10,000 tasks, 50 replications) instead of quick defaults.
bool bench_full_scale();

}  // namespace gasched::util
