#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/csv.hpp"

namespace gasched::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string fmt(double v, int prec) {
  std::ostringstream ss;
  ss << std::setprecision(prec) << v;
  return ss.str();
}

}  // namespace gasched::util
