#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace gasched::util {

CsvWriter::CsvWriter(const std::filesystem::path& path, bool append)
    : path_(path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  out_.open(path, append ? std::ios::app : std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  out_ << format_csv_row(cells) << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v));
  row(formatted);
}

void CsvWriter::flush() { out_.flush(); }

std::string format_csv_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line.push_back(',');
    line += CsvWriter::escape(cells[i]);
  }
  return line;
}

bool parse_size_t(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

std::vector<std::vector<std::string>> read_csv(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 12);
  return std::string(buf, res.ptr);
}

}  // namespace gasched::util
