#pragma once
// Streaming and batch statistics used by the experiment harness.

#include <cstddef>
#include <span>
#include <vector>

namespace gasched::util {

/// Numerically stable streaming accumulator (Welford's algorithm) for
/// mean / variance / min / max of a sample.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations.
  std::size_t count() const noexcept { return n_; }
  /// Sample mean (0 if empty).
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 if fewer than two observations).
  double variance() const noexcept;
  /// Unbiased sample standard deviation.
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const noexcept;
  /// Smallest observation (+inf if empty).
  double min() const noexcept { return min_; }
  /// Largest observation (-inf if empty).
  double max() const noexcept { return max_; }
  /// Sum of all observations.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
  bool touched_ = false;

 public:
  RunningStats() noexcept;
};

/// Summary of a batch of observations.
struct Summary {
  std::size_t count = 0;   ///< sample size
  double mean = 0.0;       ///< arithmetic mean
  double stddev = 0.0;     ///< unbiased standard deviation
  double min = 0.0;        ///< minimum
  double max = 0.0;        ///< maximum
  double median = 0.0;     ///< 50th percentile
  double ci95 = 0.0;       ///< 95% CI half-width on the mean
};

/// Computes a full summary of `xs` (copies and sorts internally).
Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of `sorted` (must be ascending),
/// `q` in [0, 100].
double percentile_sorted(std::span<const double> sorted, double q);

/// Ordinary least-squares fit y = a + b*x. Returns {intercept, slope, r2}.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
};

/// Fits a line through (xs[i], ys[i]); spans must be equal length >= 2.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace gasched::util
