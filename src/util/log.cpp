#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace gasched::util {

namespace {

LogLevel level_from_env() {
  const char* v = std::getenv("GASCHED_LOG");
  if (v == nullptr) return LogLevel::kWarn;
  const std::string_view s(v);
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard lk(log_mutex());
  std::fprintf(stderr, "[gasched %s] %s\n", log_level_name(level),
               msg.c_str());
}

}  // namespace gasched::util
