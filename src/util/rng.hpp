#pragma once
// Deterministic random number generation for reproducible simulations.
//
// The simulator, workload generators, and genetic algorithm all consume
// randomness from `gasched::util::Rng`, a thin wrapper around the
// xoshiro256** 1.0 generator (Blackman & Vigna). Every experiment run is
// seeded explicitly; replications derive independent substreams via
// `Rng::split`, so results are bit-reproducible regardless of the number
// of worker threads used to execute them.

#include <cstdint>
#include <limits>
#include <vector>

namespace gasched::util {

/// SplitMix64 step: used for seeding and stream derivation.
/// Returns the next value of the SplitMix64 sequence and advances `state`.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 256-bit state.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, though `Rng` supplies its own inverse-CDF
/// based samplers to guarantee identical streams across standard-library
/// implementations.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating SplitMix64 from `seed`.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Smallest value `operator()` can return (0).
  static constexpr result_type min() noexcept { return 0; }
  /// Largest value `operator()` can return (2^64 - 1).
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Generates the next 64 random bits.
  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls to operator(); used to derive
  /// non-overlapping parallel streams.
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// High-level RNG facade with portable, reproducible samplers.
///
/// All distribution sampling used in gasched goes through this class. The
/// samplers are implemented directly (not via std:: distributions) so that
/// a given (seed, call sequence) produces identical values on every
/// platform and standard library.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed = 1) noexcept;

  /// Derives an independent child stream. Children of the same parent with
  /// different `stream` tags are statistically independent of each other
  /// and of the parent.
  Rng split(std::uint64_t stream) const noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Box–Muller, both values used).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Normal deviate truncated below at `lo` (resampled; `lo` must be
  /// plausible for the distribution — guarded with a shift fallback after
  /// 64 rejections to stay O(1) in pathological configurations).
  double normal_truncated(double mean, double stddev, double lo) noexcept;

  /// Exponential deviate with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean) noexcept;

  /// Poisson deviate with the given mean. Uses Knuth's product method for
  /// small means and the PTRS transformed-rejection method of Hörmann for
  /// large means, both deterministic given the stream.
  std::uint64_t poisson(double mean) noexcept;

  /// Random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle of an arbitrary sequence.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

 private:
  Xoshiro256StarStar gen_;
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gasched::util
