#pragma once
// Fixed-bucket log-linear histogram for latency recording.
//
// Values are non-negative 64-bit integers (nanoseconds, in the serving
// runtime). The bucket layout is fixed at construction and never grows:
// values below kSubBuckets get exact unit buckets; above that, every
// power-of-two range [2^e, 2^{e+1}) splits into kSubBuckets linear
// sub-buckets, so any recorded value lands in a bucket whose width is at
// most value/kSubBuckets — a guaranteed relative quantile error of
// 1/kSubBuckets (6.25% at the default 16 sub-buckets), like HdrHistogram
// at 4 significant bits.
//
// record() is allocation-free, branch-light (bit_width + shifts), and
// O(1); quantile() scans the ~1000 buckets. Single-threaded by design —
// the runtime's master thread owns every recorder (workers ship raw
// timestamps through the completion rings instead of sharing state).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gasched::util {

class LogLinearHistogram {
 public:
  /// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two.
  static constexpr unsigned kSubBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;

  /// Preallocates every bucket (the full 64-bit value range is covered).
  LogLinearHistogram();

  /// Records one value. Never allocates.
  void record(std::uint64_t value) noexcept;

  /// Number of recorded values.
  std::uint64_t count() const noexcept { return count_; }
  /// Smallest recorded value (0 when empty).
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  /// Largest recorded value (0 when empty).
  std::uint64_t max() const noexcept { return max_; }
  /// Mean of the recorded values, exact (0 when empty).
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the inclusive upper bound of the
  /// bucket holding the ceil(q·count)-th smallest sample, clamped to
  /// max(). Guaranteed >= the exact order statistic and within a factor
  /// of (1 + 1/kSubBuckets) of it. Returns 0 when empty.
  std::uint64_t quantile(double q) const noexcept;

  /// Forgets all recorded values (buckets stay allocated).
  void reset() noexcept;

  /// Adds every bucket count of `other` into this histogram.
  void merge(const LogLinearHistogram& other) noexcept;

  /// Bucket index for a value — exposed for the boundary tests.
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_lower_bound(std::size_t index) noexcept;
  /// Largest value mapping to bucket `index` (inclusive).
  static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;
  /// Total number of buckets.
  static std::size_t bucket_count() noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace gasched::util
