#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gasched::util {

namespace {

// Buckets: kSubBuckets unit buckets for [0, kSubBuckets), then one block
// of kSubBuckets sub-buckets per exponent e in [kSubBits, 63]. Block b
// (1-based) covers [2^{b+kSubBits-1}, 2^{b+kSubBits}).
constexpr std::size_t kBlocks =
    64 - LogLinearHistogram::kSubBits;  // exponents kSubBits..63
constexpr std::size_t kBucketCount =
    (kBlocks + 1) * LogLinearHistogram::kSubBuckets;

}  // namespace

LogLinearHistogram::LogLinearHistogram() : counts_(kBucketCount, 0) {}

std::size_t LogLinearHistogram::bucket_count() noexcept {
  return kBucketCount;
}

std::size_t LogLinearHistogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned exp = std::bit_width(value) - 1;  // >= kSubBits
  const unsigned shift = exp - kSubBits;
  const std::size_t block = exp - kSubBits + 1;
  const std::size_t sub =
      static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  return block * kSubBuckets + sub;
}

std::uint64_t LogLinearHistogram::bucket_lower_bound(
    std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t block = index / kSubBuckets;  // >= 1
  const std::uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (block - 1);
}

std::uint64_t LogLinearHistogram::bucket_upper_bound(
    std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t block = index / kSubBuckets;  // >= 1
  const std::uint64_t width = 1ull << (block - 1);
  return bucket_lower_bound(index) + (width - 1);
}

void LogLinearHistogram::record(std::uint64_t value) noexcept {
  ++counts_[bucket_index(value)];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

std::uint64_t LogLinearHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      // The top bucket's upper bound can overshoot the true maximum;
      // clamp so quantile(1) == max().
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

void LogLinearHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

void LogLinearHistogram::merge(const LogLinearHistogram& other) noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

}  // namespace gasched::util
