#pragma once
// Text Gantt chart and trace export for simulation task traces
// (EngineConfig::record_task_trace). Useful for eyeballing schedules in
// examples and debugging protocol behaviour.

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace gasched::sim {

/// Options for render_gantt.
struct GanttOptions {
  std::size_t width = 100;       ///< characters across the time axis
  std::size_t max_procs = 20;    ///< rows rendered (first N processors)
  char busy_char = '#';          ///< executing
  char comm_char = '-';          ///< receiving a task
  char idle_char = '.';          ///< neither
};

/// Renders an ASCII Gantt chart of `result`'s task trace to `os`. Each row
/// is a processor; time runs left to right from 0 to the makespan.
/// Requires the trace to be present (throws std::invalid_argument
/// otherwise).
void render_gantt(const SimulationResult& result, std::ostream& os,
                  const GanttOptions& opts = {});

/// Writes the task trace as CSV
/// (id,proc,arrival,dispatch,start,completion,comm_cost,attempts).
void save_task_trace(const SimulationResult& result,
                     const std::filesystem::path& path);

/// Validates internal consistency of a task trace: every completed task
/// has arrival <= dispatch <= start <= completion and a valid processor.
/// Returns an empty string when consistent, else a description of the
/// first violation.
std::string validate_task_trace(const SimulationResult& result);

}  // namespace gasched::sim
