#include "sim/linpack.hpp"

#include <chrono>
#include <utility>
#include <cmath>
#include <stdexcept>

namespace gasched::sim {

bool lu_factor(std::vector<double>& a, std::size_t n,
               std::vector<std::size_t>& piv) {
  piv.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t p = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a[i * n + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv[k] = p;
    if (best == 0.0) return false;
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[k * n + c], a[p * n + c]);
    }
    const double pivot = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a[i * n + k] / pivot;
      a[i * n + k] = m;
      const double* rk = &a[k * n];
      double* ri = &a[i * n];
      for (std::size_t c = k + 1; c < n; ++c) ri[c] -= m * rk[c];
    }
  }
  return true;
}

void lu_solve(const std::vector<double>& a, std::size_t n,
              const std::vector<std::size_t>& piv, std::vector<double>& b) {
  // Apply the recorded row swaps, then forward/back substitution.
  for (std::size_t k = 0; k < n; ++k) {
    if (piv[k] != k) std::swap(b[k], b[piv[k]]);
  }
  for (std::size_t i = 1; i < n; ++i) {
    double s = b[i];
    const double* ri = &a[i * n];
    for (std::size_t c = 0; c < i; ++c) s -= ri[c] * b[c];
    b[i] = s;
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    const double* ri = &a[i * n];
    for (std::size_t c = i + 1; c < n; ++c) s -= ri[c] * b[c];
    b[i] = s / ri[i];
  }
}

LinpackResult linpack_benchmark(std::size_t n, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("linpack_benchmark: n must be > 0");
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform(-0.5, 0.5);
  // Make the matrix comfortably non-singular (diagonal dominance).
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += a[i * n + c];
    b[i] = s;  // exact solution is the all-ones vector
  }
  const std::vector<double> a_orig = a;
  const std::vector<double> b_orig = b;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::size_t> piv;
  if (!lu_factor(a, n, piv)) {
    throw std::runtime_error("linpack_benchmark: singular matrix");
  }
  lu_solve(a, n, piv, b);
  const auto t1 = std::chrono::steady_clock::now();

  LinpackResult res;
  res.n = n;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  const double nd = static_cast<double>(n);
  const double flops = 2.0 / 3.0 * nd * nd * nd + 2.0 * nd * nd;
  res.mflops = res.seconds > 0.0 ? flops / res.seconds / 1e6 : 0.0;
  // Residual ||Ax − b||_inf against the original system.
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += a_orig[i * n + c] * b[c];
    resid = std::max(resid, std::abs(s - b_orig[i]));
  }
  res.residual = resid;
  return res;
}

}  // namespace gasched::sim
