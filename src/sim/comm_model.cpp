#include "sim/comm_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gasched::sim {

NormalCommModel::NormalCommModel(const CommConfig& cfg, std::size_t links,
                                 util::Rng& rng)
    : cfg_(cfg) {
  if (!(cfg.mean_cost >= 0.0) || cfg.spread_cv < 0.0 || cfg.jitter_cv < 0.0) {
    throw std::invalid_argument("NormalCommModel: invalid CommConfig");
  }
  means_.reserve(links);
  for (std::size_t j = 0; j < links; ++j) {
    const double mean = rng.normal_truncated(
        cfg.mean_cost, cfg.spread_cv * cfg.mean_cost, cfg.floor);
    means_.push_back(mean);
  }
}

double NormalCommModel::sample(ProcId j, SimTime, util::Rng& rng) const {
  const double mean = means_.at(static_cast<std::size_t>(j));
  const double draw = rng.normal(mean, cfg_.jitter_cv * mean);
  return std::max(draw, cfg_.floor);
}

double NormalCommModel::true_mean(ProcId j) const {
  return means_.at(static_cast<std::size_t>(j));
}

DriftingCommModel::DriftingCommModel(const CommConfig& cfg, std::size_t links,
                                     double drift_step, SimTime dwell,
                                     SimTime horizon, util::Rng& rng)
    : cfg_(cfg), dwell_(dwell) {
  if (!(dwell > 0.0) || !(horizon > 0.0) || drift_step < 0.0) {
    throw std::invalid_argument("DriftingCommModel: invalid parameters");
  }
  const auto periods = static_cast<std::size_t>(std::ceil(horizon / dwell)) + 1;
  walks_.resize(links);
  for (auto& walk : walks_) {
    walk.reserve(periods);
    double mean = rng.normal_truncated(cfg.mean_cost,
                                       cfg.spread_cv * cfg.mean_cost,
                                       cfg.floor);
    for (std::size_t p = 0; p < periods; ++p) {
      walk.push_back(mean);
      mean = std::max(cfg.floor,
                      mean + rng.uniform(-drift_step, drift_step) *
                                 cfg.mean_cost);
    }
  }
}

double DriftingCommModel::mean_at(ProcId j, SimTime t) const {
  const auto& walk = walks_.at(static_cast<std::size_t>(j));
  const auto idx =
      static_cast<std::size_t>(std::max(t, 0.0) / dwell_);
  return walk[std::min(idx, walk.size() - 1)];
}

double DriftingCommModel::sample(ProcId j, SimTime t, util::Rng& rng) const {
  const double mean = mean_at(j, t);
  const double draw = rng.normal(mean, cfg_.jitter_cv * mean);
  return std::max(draw, cfg_.floor);
}

double DriftingCommModel::true_mean(ProcId j) const {
  const auto& walk = walks_.at(static_cast<std::size_t>(j));
  double s = 0.0;
  for (double m : walk) s += m;
  return walk.empty() ? cfg_.mean_cost : s / static_cast<double>(walk.size());
}

}  // namespace gasched::sim
