#pragma once
// Communication cost models (paper §4.3): "Each communications link has
// its own randomly generated mean cost, which is normally distributed."
// Dispatching a task from the scheduler to processor j costs a sample from
// link j's distribution; the scheduler never sees the true mean, only the
// realised costs, which it smooths with Γ (util::Smoother).

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace gasched::sim {

/// Interface: per-dispatch communication cost of sending one task over the
/// scheduler→processor link `j` at time `t`.
class CommModel {
 public:
  virtual ~CommModel() = default;
  /// Samples the cost (seconds) of one dispatch to processor `j` at `t`.
  /// Results are always >= min_cost().
  virtual double sample(ProcId j, SimTime t, util::Rng& rng) const = 0;
  /// True per-link mean (for tests/telemetry; schedulers must not use it).
  virtual double true_mean(ProcId j) const = 0;
  /// Number of links (== number of processors).
  virtual std::size_t links() const = 0;
  /// Smallest possible cost.
  virtual double min_cost() const = 0;
  /// Model name.
  virtual std::string name() const = 0;
};

/// Configuration for the paper's normal per-link cost model.
struct CommConfig {
  /// Mean of the per-link means ("mean communications cost", the x-axis of
  /// Figs 5 and 7 is 1 / this value).
  double mean_cost = 20.0;
  /// Spread of per-link means around mean_cost, as a coefficient of
  /// variation (per-link mean ~ N(mean_cost, (spread_cv*mean_cost)^2)).
  double spread_cv = 0.5;
  /// Per-dispatch jitter, as a coefficient of variation of the link mean.
  double jitter_cv = 0.2;
  /// Hard lower bound on any sampled cost.
  double floor = 1e-3;
};

/// Paper model: each link has a fixed true mean drawn once from a normal
/// distribution; each dispatch adds normal jitter around that mean.
class NormalCommModel final : public CommModel {
 public:
  /// Draws the per-link means using `rng`.
  NormalCommModel(const CommConfig& cfg, std::size_t links, util::Rng& rng);
  double sample(ProcId j, SimTime t, util::Rng& rng) const override;
  double true_mean(ProcId j) const override;
  std::size_t links() const override { return means_.size(); }
  double min_cost() const override { return cfg_.floor; }
  std::string name() const override { return "normal"; }

 private:
  CommConfig cfg_;
  std::vector<double> means_;
};

/// Zero-cost network (instantaneous message passing) — the assumption the
/// paper criticises in prior work; used as a control in tests/ablations.
class ZeroCommModel final : public CommModel {
 public:
  /// `links` = processor count.
  explicit ZeroCommModel(std::size_t links) : links_(links) {}
  double sample(ProcId, SimTime, util::Rng&) const override { return 0.0; }
  double true_mean(ProcId) const override { return 0.0; }
  std::size_t links() const override { return links_; }
  double min_cost() const override { return 0.0; }
  std::string name() const override { return "zero"; }

 private:
  std::size_t links_;
};

/// Time-varying link costs: per-link mean follows a piecewise-constant
/// random walk (precomputed from a seed), exercising the scheduler's
/// claim to "adapt to varying resource environments".
class DriftingCommModel final : public CommModel {
 public:
  /// The per-link mean starts at a NormalCommModel-style draw and then
  /// random-walks by up to `drift_step` (fraction of mean_cost) every
  /// `dwell` seconds up to `horizon`.
  DriftingCommModel(const CommConfig& cfg, std::size_t links,
                    double drift_step, SimTime dwell, SimTime horizon,
                    util::Rng& rng);
  double sample(ProcId j, SimTime t, util::Rng& rng) const override;
  double true_mean(ProcId j) const override;  ///< time-average of the walk
  /// Mean at a specific time (tests).
  double mean_at(ProcId j, SimTime t) const;
  std::size_t links() const override { return walks_.size(); }
  double min_cost() const override { return cfg_.floor; }
  std::string name() const override { return "drifting"; }

 private:
  CommConfig cfg_;
  SimTime dwell_;
  std::vector<std::vector<double>> walks_;  // per link, per dwell period
};

}  // namespace gasched::sim
