#include "sim/gantt.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"

namespace gasched::sim {

void render_gantt(const SimulationResult& result, std::ostream& os,
                  const GanttOptions& opts) {
  if (result.task_trace.empty()) {
    throw std::invalid_argument(
        "render_gantt: no task trace (set EngineConfig::record_task_trace)");
  }
  const double span = std::max(result.makespan, 1e-9);
  const std::size_t rows =
      std::min(opts.max_procs, result.per_proc.size());
  std::vector<std::string> lanes(rows, std::string(opts.width,
                                                   opts.idle_char));
  auto col = [&](double t) {
    const auto c = static_cast<std::size_t>(t / span *
                                            static_cast<double>(opts.width));
    return std::min(c, opts.width - 1);
  };
  for (const auto& rec : result.task_trace) {
    if (rec.proc < 0 || static_cast<std::size_t>(rec.proc) >= rows) continue;
    auto& lane = lanes[static_cast<std::size_t>(rec.proc)];
    for (std::size_t c = col(rec.dispatch); c <= col(rec.start); ++c) {
      if (lane[c] == opts.idle_char) lane[c] = opts.comm_char;
    }
    for (std::size_t c = col(rec.start); c <= col(rec.completion); ++c) {
      lane[c] = opts.busy_char;
    }
  }
  os << "Gantt (t = 0 .. " << result.makespan << " s; '" << opts.busy_char
     << "' exec, '" << opts.comm_char << "' comm, '" << opts.idle_char
     << "' idle)\n";
  for (std::size_t j = 0; j < rows; ++j) {
    os << "P" << j << (j < 10 ? "  |" : " |") << lanes[j] << "|\n";
  }
  if (rows < result.per_proc.size()) {
    os << "(" << result.per_proc.size() - rows << " more processors)\n";
  }
}

void save_task_trace(const SimulationResult& result,
                     const std::filesystem::path& path) {
  util::CsvWriter w(path);
  w.row({"id", "proc", "arrival", "dispatch", "start", "completion",
         "comm_cost", "attempts"});
  for (const auto& r : result.task_trace) {
    w.row({std::to_string(r.id), std::to_string(r.proc),
           util::format_double(r.arrival), util::format_double(r.dispatch),
           util::format_double(r.start), util::format_double(r.completion),
           util::format_double(r.comm_cost), std::to_string(r.attempts)});
  }
}

std::string validate_task_trace(const SimulationResult& result) {
  for (const auto& r : result.task_trace) {
    if (r.proc < 0 ||
        static_cast<std::size_t>(r.proc) >= result.per_proc.size()) {
      return "task " + std::to_string(r.id) + ": invalid processor";
    }
    if (r.dispatch + 1e-12 < r.arrival) {
      return "task " + std::to_string(r.id) + ": dispatched before arrival";
    }
    if (r.start + 1e-12 < r.dispatch) {
      return "task " + std::to_string(r.id) + ": started before dispatch";
    }
    if (r.completion + 1e-12 < r.start) {
      return "task " + std::to_string(r.id) + ": completed before start";
    }
    if (r.attempts == 0) {
      return "task " + std::to_string(r.id) + ": zero dispatch attempts";
    }
  }
  return {};
}

}  // namespace gasched::sim
