#include "sim/availability.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace gasched::sim {

namespace {
constexpr double kMinFraction = 1e-6;  // keep multiplier strictly positive
}

FixedAvailability::FixedAvailability(double fraction)
    : fraction_(std::clamp(fraction, kMinFraction, 1.0)) {}

SinusoidalAvailability::SinusoidalAvailability(double lo, double hi,
                                               double period, double phase)
    : lo_(lo), hi_(hi), period_(period), phase_(phase) {
  if (!(lo > 0.0) || !(hi >= lo) || !(hi <= 1.0) || !(period > 0.0)) {
    throw std::invalid_argument(
        "SinusoidalAvailability: need 0 < lo <= hi <= 1, period > 0");
  }
}

double SinusoidalAvailability::multiplier(SimTime t) const {
  const double mid = 0.5 * (lo_ + hi_);
  const double amp = 0.5 * (hi_ - lo_);
  const double w = 2.0 * std::numbers::pi / period_;
  return mid + amp * std::sin(w * t + phase_);
}

RandomWalkAvailability::RandomWalkAvailability(double lo, double hi,
                                               double dwell, double step,
                                               SimTime horizon,
                                               std::uint64_t seed)
    : lo_(lo), hi_(hi), dwell_(dwell) {
  if (!(lo > 0.0) || !(hi >= lo) || !(hi <= 1.0) || !(dwell > 0.0) ||
      !(horizon > 0.0)) {
    throw std::invalid_argument(
        "RandomWalkAvailability: need 0 < lo <= hi <= 1, dwell > 0, "
        "horizon > 0");
  }
  util::Rng rng(seed);
  const auto n = static_cast<std::size_t>(std::ceil(horizon / dwell)) + 1;
  levels_.reserve(n);
  double level = 0.5 * (lo_ + hi_);
  for (std::size_t i = 0; i < n; ++i) {
    levels_.push_back(level);
    level = std::clamp(level + rng.uniform(-step, step), lo_, hi_);
  }
}

double RandomWalkAvailability::multiplier(SimTime t) const {
  if (t <= 0.0) return levels_.front();
  const auto idx = static_cast<std::size_t>(t / dwell_);
  return levels_[std::min(idx, levels_.size() - 1)];
}

TwoStateAvailability::TwoStateAvailability(double loaded_fraction,
                                           double mean_free_dwell,
                                           double mean_loaded_dwell,
                                           SimTime horizon,
                                           std::uint64_t seed) {
  if (!(loaded_fraction > 0.0) || !(loaded_fraction <= 1.0) ||
      !(mean_free_dwell > 0.0) || !(mean_loaded_dwell > 0.0) ||
      !(horizon > 0.0)) {
    throw std::invalid_argument("TwoStateAvailability: invalid parameters");
  }
  util::Rng rng(seed);
  SimTime t = 0.0;
  bool loaded = rng.bernoulli(mean_loaded_dwell /
                              (mean_free_dwell + mean_loaded_dwell));
  while (t < horizon) {
    const double dwell =
        rng.exponential(loaded ? mean_loaded_dwell : mean_free_dwell);
    t += std::max(dwell, 1e-9);
    segments_.push_back({t, loaded ? loaded_fraction : 1.0});
    loaded = !loaded;
  }
  final_level_ = segments_.empty() ? 1.0 : segments_.back().level;
}

double TwoStateAvailability::multiplier(SimTime t) const {
  // Binary search the segment containing t.
  const auto it = std::lower_bound(
      segments_.begin(), segments_.end(), t,
      [](const Segment& s, SimTime v) { return s.until <= v; });
  return it == segments_.end() ? final_level_ : it->level;
}

SimTime integrate_exec_time(const AvailabilityModel& model, double base_rate,
                            double work_mflops, SimTime start, double dt) {
  if (work_mflops <= 0.0) return 0.0;
  if (!(base_rate > 0.0)) {
    throw std::invalid_argument("integrate_exec_time: base_rate must be > 0");
  }
  if (model.constant()) {
    return work_mflops / (base_rate * model.multiplier(start));
  }
  double remaining = work_mflops;
  SimTime t = start;
  // Guard against absurd run-away integration: after this many steps we
  // finish in closed form at the current rate.
  constexpr std::size_t kMaxSteps = 10'000'000;
  for (std::size_t i = 0; i < kMaxSteps; ++i) {
    const double rate = base_rate * std::max(model.multiplier(t), kMinFraction);
    const double chunk = rate * dt;
    if (chunk >= remaining) {
      return (t - start) + remaining / rate;
    }
    remaining -= chunk;
    t += dt;
  }
  const double rate = base_rate * std::max(model.multiplier(t), 1e-6);
  return (t - start) + remaining / rate;
}

}  // namespace gasched::sim
