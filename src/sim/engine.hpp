#pragma once
// Discrete-event simulation engine for the scheduler/processor protocol
// described in §3 of the paper:
//
//  * Arriving tasks enter a queue of unscheduled tasks at the scheduler.
//  * The scheduler maintains a queue of future tasks for each processor;
//    processors themselves hold no queue (so work is never stranded on a
//    machine that disappears).
//  * Each idle processor requests a task; the head of its future queue is
//    sent over the link (costing a sample from the communication model),
//    executes at the processor's effective rate, and completes, whereupon
//    the processor requests again.
//  * The scheduling policy is (re)invoked when tasks arrive and whenever a
//    processor goes idle with an empty future queue while unscheduled
//    tasks remain — this is what lets batch-mode policies observe realised
//    communication costs before later batches are placed.
//  * Optionally, processors fail and recover (sim::FailureTrace): all work
//    held for a failed processor — in-flight, executing, and its future
//    queue — returns to the scheduler for reassignment, exactly the
//    situation ("a machine is switched off") the paper's scheduler-side
//    queues are designed for.
//  * Optionally, scheduler computation consumes simulated time
//    (EngineConfig::sched_time_scale): an invocation's assignment only
//    takes effect sched_time_scale × (measured wall seconds) later,
//    modelling the dedicated scheduler processor of §3.
//
// The engine accounts busy / communication / idle time per processor and
// measures the wall-clock time spent inside the scheduling policy (used by
// the Fig 4 reproduction).
//
// Two ways to drive it:
//
//  * simulate() — one closed §3 run to completion (the paper's setting).
//  * class Engine — the same protocol exposed stepwise: construct, then
//    step() one event at a time, inject_task() externally-routed arrivals
//    at runtime, and take_unscheduled() backlog away for migration. This
//    is the surface fed::Federation composes N engines over; events run
//    on a sim::CalendarQueue so a single engine scales to thousands of
//    processors and millions of tasks (O(1) amortised event ops, arena
//    slots, no per-event heap allocation in steady state).
//
// Determinism contract: identical (cluster, workload, policy, rng, cfg)
// and an identical sequence of stepwise calls produce identical results;
// simulate() is byte-for-byte the pre-CalendarQueue engine (events pop in
// the same (time, FIFO-seq) order the old binary heap produced).

#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/failure.hpp"
#include "sim/policy.hpp"
#include "sim/types.hpp"
#include "util/smoothing.hpp"
#include "workload/task.hpp"

namespace gasched::sim {

/// Engine tuning knobs.
struct EngineConfig {
  /// Smoothing factor ν for the per-link communication estimators.
  double comm_nu = 0.5;
  /// Smoothing factor ν for the per-processor rate estimators.
  double rate_nu = 0.5;
  /// Integration step for time-varying availability models (seconds).
  double avail_dt = 1.0;
  /// Safety valve: abort if the event count exceeds this many times the
  /// task count (protocol bug guard). 0 disables.
  std::size_t max_event_factor = 64;
  /// Optional processor outage trace (borrowed; may be nullptr).
  const FailureTrace* failures = nullptr;
  /// If > 0, an invocation's assignment is applied only after
  /// sched_time_scale × (its measured wall-clock seconds) of simulated
  /// time, modelling scheduler computation on the dedicated processor.
  double sched_time_scale = 0.0;
  /// Record a per-task trace (dispatch/start/completion/processor).
  bool record_task_trace = false;
  /// Serialise dispatches over the scheduler's uplink: only one task
  /// payload is in flight at a time and further requests queue at the
  /// link. Models a single scheduler NIC instead of independent links.
  bool serial_dispatch = false;
};

/// Per-processor accounting.
struct ProcessorStats {
  double busy_time = 0.0;   ///< seconds spent executing (incl. wasted work)
  double comm_time = 0.0;   ///< seconds spent receiving task payloads
  std::size_t tasks = 0;    ///< tasks completed
  double work_mflops = 0.0; ///< MFLOPs completed
  std::size_t failures = 0; ///< outages experienced during the run
};

/// One completed task's lifecycle (recorded when
/// EngineConfig::record_task_trace is set).
struct TaskRecord {
  workload::TaskId id = workload::kInvalidTask;
  ProcId proc = kInvalidProc;  ///< processor that completed it
  double arrival = 0.0;        ///< arrival at the scheduler
  double dispatch = 0.0;       ///< final dispatch over the link
  double start = 0.0;          ///< execution start
  double completion = 0.0;     ///< execution end
  double comm_cost = 0.0;      ///< link cost of the final dispatch
  std::size_t attempts = 1;    ///< dispatch attempts (> 1 after failures)
};

/// Complete result of one simulation run.
struct SimulationResult {
  double makespan = 0.0;            ///< time of the last task completion
  std::size_t tasks_completed = 0;  ///< should equal the workload size
  std::vector<ProcessorStats> per_proc;
  std::size_t scheduler_invocations = 0;
  /// Wall-clock seconds spent inside SchedulingPolicy::invoke.
  double scheduler_wall_seconds = 0.0;
  /// Mean task response time (completion − arrival).
  double mean_response_time = 0.0;
  /// Tasks returned to the scheduler because their processor failed.
  std::size_t tasks_requeued = 0;
  /// Per-task lifecycle records (empty unless record_task_trace).
  std::vector<TaskRecord> task_trace;
  /// Largest relative deviation recorded by the fast-mode tolerance audit
  /// during this run (core/numeric.hpp). 0.0 in exact mode or when no
  /// evaluation was sampled.
  double audit_max_deviation = 0.0;

  /// Paper's efficiency metric: fraction of processor-time spent
  /// processing rather than communicating or idling, i.e.
  /// Σ busy_j / (M · makespan).
  double efficiency() const {
    if (makespan <= 0.0 || per_proc.empty()) return 0.0;
    double busy = 0.0;
    for (const auto& p : per_proc) busy += p.busy_time;
    return busy / (static_cast<double>(per_proc.size()) * makespan);
  }

  /// Total communication seconds across processors.
  double total_comm_time() const {
    double s = 0.0;
    for (const auto& p : per_proc) s += p.comm_time;
    return s;
  }

  /// Total busy seconds across processors.
  double total_busy_time() const {
    double s = 0.0;
    for (const auto& p : per_proc) s += p.busy_time;
    return s;
  }
};

/// The §3 protocol as a steppable object. `cluster` and `policy` are
/// borrowed and must outlive the engine; the workload is copied so
/// inject_task() can grow it at runtime.
class Engine {
 public:
  Engine(const Cluster& cluster, const workload::Workload& workload,
         SchedulingPolicy& policy, util::Rng rng,
         const EngineConfig& cfg = {});

  /// Runs the protocol to completion (the paper's closed setting):
  /// processes events until every task completed, giving the policy one
  /// last invocation if the event set drains early, and throws
  /// std::runtime_error on a wedged protocol (nothing assigned) or a
  /// blown event budget. Call at most once, and not after step().
  SimulationResult run();

  // --- stepwise surface (what fed::Federation drives) --------------------

  /// True when every task this engine ever owned has completed or been
  /// exported via take_unscheduled().
  bool finished() const noexcept {
    return completed_ + exported_ >= tasks_.size();
  }
  /// True when at least one event is pending.
  bool has_events() const noexcept { return !events_.empty(); }
  /// Timestamp of the next pending event. Requires has_events().
  SimTime next_event_time() const { return events_.top_time(); }
  /// Simulation clock: time of the last processed event.
  SimTime now() const noexcept { return now_; }

  /// Processes exactly one event (the earliest; FIFO among ties).
  /// Requires has_events(). Throws std::runtime_error when the event
  /// budget is exceeded.
  void step();

  /// Invokes the scheduling policy now if unscheduled tasks remain
  /// (the "one more chance" a closed run grants before declaring
  /// deadlock). Returns true when events are pending afterwards.
  bool kick();

  /// Hands an externally-routed task to this engine's scheduler: it
  /// arrives at time `at` (>= now(); ids must be unique within the
  /// engine). Used by the federation for initial routing *and* for
  /// migrated spillover.
  void inject_task(const workload::Task& task, SimTime at);

  /// Removes up to `max_tasks` tasks from the *back* of the unscheduled
  /// queue (newest first, so the local scheduler keeps its FIFO head)
  /// and transfers ownership to the caller. The engine no longer counts
  /// them toward finished().
  std::vector<workload::Task> take_unscheduled(std::size_t max_tasks);

  /// Tasks waiting at the scheduler (not yet assigned to any processor).
  std::size_t unscheduled_count() const noexcept {
    return unscheduled_.size();
  }
  /// Backlog = unscheduled + assigned-but-not-yet-dispatched tasks; the
  /// queue-pressure signal migration policies compare across clusters.
  std::size_t backlog() const noexcept {
    return unscheduled_.size() + future_count_;
  }
  /// Tasks ever owned (injected + initial workload).
  std::size_t tasks_total() const noexcept { return tasks_.size(); }
  /// Tasks completed so far.
  std::size_t tasks_completed() const noexcept { return completed_; }
  /// Events processed so far (the perf probes' throughput denominator).
  std::size_t events_processed() const noexcept { return processed_; }
  /// Number of worker processors.
  std::size_t procs() const noexcept { return procs_.size(); }

  /// Snapshot of the result so far (finalised makespan/means; cheap).
  SimulationResult result() const;

 private:
  enum class EventKind : std::uint8_t {
    kArrival,
    kRequest,
    kDelivered,
    kCompleted,
    kFail,
    kRecover,
    kAssign,
  };

  struct Ev {
    EventKind kind = EventKind::kArrival;
    ProcId proc = kInvalidProc;
    std::size_t payload = 0;  // task index, or pending-assignment index
    std::uint64_t epoch = 0;  // proc epoch at posting (failure staleness)
  };

  struct ProcRuntime {
    std::deque<std::size_t> future;  // task indices awaiting dispatch
    double future_mflops = 0.0;      // running sum of queued sizes
    bool parked = false;             // idle with empty queue
    bool down = false;               // mid-outage
    std::uint64_t epoch = 0;         // bumped on failure; stale events drop
    bool inflight = false;
    std::size_t inflight_task = 0;
    double inflight_mflops = 0.0;
    bool executing = false;
    std::size_t exec_task = 0;
    double exec_mflops = 0.0;
    SimTime exec_start = 0.0;
    SimTime exec_end = 0.0;
    util::Smoother rate_est;
    util::Smoother comm_est;
    ProcessorStats stats;
  };

  void post(SimTime t, EventKind k, ProcId p, std::size_t payload = 0,
            std::uint64_t epoch = 0) {
    events_.push(t, Ev{k, p, payload, epoch});
  }
  double remaining_exec_mflops(const ProcRuntime& pr) const;
  SystemView build_view() const;
  void apply_assignment(const BatchAssignment& assignment);
  void try_schedule();
  std::size_t requeue_holdings(std::size_t j);
  void start_dispatch(ProcId proc);
  std::size_t event_budget() const;
  void dispatch(const Ev& ev);

  const Cluster& cluster_;
  SchedulingPolicy& policy_;
  EngineConfig cfg_;
  util::Rng rng_;

  std::vector<workload::Task> tasks_;  // grows via inject_task
  std::unordered_map<workload::TaskId, std::size_t> id_to_index_;
  CalendarQueue<Ev> events_;
  std::vector<ProcRuntime> procs_;
  std::deque<workload::Task> unscheduled_;
  std::vector<BatchAssignment> pending_assignments_;
  std::vector<TaskRecord> records_;

  SimTime now_ = 0.0;
  std::size_t completed_ = 0;
  std::size_t exported_ = 0;      // tasks handed away via take_unscheduled
  std::size_t future_count_ = 0;  // Σ over procs of future-queue length
  double response_sum_ = 0.0;
  double policy_wall_ = 0.0;
  double makespan_ = 0.0;
  std::size_t invocations_ = 0;
  std::size_t requeued_ = 0;
  std::size_t processed_ = 0;
  bool link_busy_ = false;             // serial_dispatch uplink state
  std::deque<ProcId> link_waiting_;
};

/// Runs `workload` on `cluster` under `policy`. `rng` drives all stochastic
/// elements of the run (communication jitter, scheduler randomness);
/// identical inputs produce identical results.
SimulationResult simulate(const Cluster& cluster,
                          const workload::Workload& workload,
                          SchedulingPolicy& policy, util::Rng rng,
                          const EngineConfig& cfg = {});

}  // namespace gasched::sim
