#pragma once
// Discrete-event simulation engine for the scheduler/processor protocol
// described in §3 of the paper:
//
//  * Arriving tasks enter a queue of unscheduled tasks at the scheduler.
//  * The scheduler maintains a queue of future tasks for each processor;
//    processors themselves hold no queue (so work is never stranded on a
//    machine that disappears).
//  * Each idle processor requests a task; the head of its future queue is
//    sent over the link (costing a sample from the communication model),
//    executes at the processor's effective rate, and completes, whereupon
//    the processor requests again.
//  * The scheduling policy is (re)invoked when tasks arrive and whenever a
//    processor goes idle with an empty future queue while unscheduled
//    tasks remain — this is what lets batch-mode policies observe realised
//    communication costs before later batches are placed.
//  * Optionally, processors fail and recover (sim::FailureTrace): all work
//    held for a failed processor — in-flight, executing, and its future
//    queue — returns to the scheduler for reassignment, exactly the
//    situation ("a machine is switched off") the paper's scheduler-side
//    queues are designed for.
//  * Optionally, scheduler computation consumes simulated time
//    (EngineConfig::sched_time_scale): an invocation's assignment only
//    takes effect sched_time_scale × (measured wall seconds) later,
//    modelling the dedicated scheduler processor of §3.
//
// The engine accounts busy / communication / idle time per processor and
// measures the wall-clock time spent inside the scheduling policy (used by
// the Fig 4 reproduction).

#include <deque>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/policy.hpp"
#include "sim/types.hpp"
#include "util/smoothing.hpp"
#include "workload/task.hpp"

namespace gasched::sim {

/// Engine tuning knobs.
struct EngineConfig {
  /// Smoothing factor ν for the per-link communication estimators.
  double comm_nu = 0.5;
  /// Smoothing factor ν for the per-processor rate estimators.
  double rate_nu = 0.5;
  /// Integration step for time-varying availability models (seconds).
  double avail_dt = 1.0;
  /// Safety valve: abort if the event count exceeds this many times the
  /// task count (protocol bug guard). 0 disables.
  std::size_t max_event_factor = 64;
  /// Optional processor outage trace (borrowed; may be nullptr).
  const FailureTrace* failures = nullptr;
  /// If > 0, an invocation's assignment is applied only after
  /// sched_time_scale × (its measured wall-clock seconds) of simulated
  /// time, modelling scheduler computation on the dedicated processor.
  double sched_time_scale = 0.0;
  /// Record a per-task trace (dispatch/start/completion/processor).
  bool record_task_trace = false;
  /// Serialise dispatches over the scheduler's uplink: only one task
  /// payload is in flight at a time and further requests queue at the
  /// link. Models a single scheduler NIC instead of independent links.
  bool serial_dispatch = false;
};

/// Per-processor accounting.
struct ProcessorStats {
  double busy_time = 0.0;   ///< seconds spent executing (incl. wasted work)
  double comm_time = 0.0;   ///< seconds spent receiving task payloads
  std::size_t tasks = 0;    ///< tasks completed
  double work_mflops = 0.0; ///< MFLOPs completed
  std::size_t failures = 0; ///< outages experienced during the run
};

/// One completed task's lifecycle (recorded when
/// EngineConfig::record_task_trace is set).
struct TaskRecord {
  workload::TaskId id = workload::kInvalidTask;
  ProcId proc = kInvalidProc;  ///< processor that completed it
  double arrival = 0.0;        ///< arrival at the scheduler
  double dispatch = 0.0;       ///< final dispatch over the link
  double start = 0.0;          ///< execution start
  double completion = 0.0;     ///< execution end
  double comm_cost = 0.0;      ///< link cost of the final dispatch
  std::size_t attempts = 1;    ///< dispatch attempts (> 1 after failures)
};

/// Complete result of one simulation run.
struct SimulationResult {
  double makespan = 0.0;            ///< time of the last task completion
  std::size_t tasks_completed = 0;  ///< should equal the workload size
  std::vector<ProcessorStats> per_proc;
  std::size_t scheduler_invocations = 0;
  /// Wall-clock seconds spent inside SchedulingPolicy::invoke.
  double scheduler_wall_seconds = 0.0;
  /// Mean task response time (completion − arrival).
  double mean_response_time = 0.0;
  /// Tasks returned to the scheduler because their processor failed.
  std::size_t tasks_requeued = 0;
  /// Per-task lifecycle records (empty unless record_task_trace).
  std::vector<TaskRecord> task_trace;

  /// Paper's efficiency metric: fraction of processor-time spent
  /// processing rather than communicating or idling, i.e.
  /// Σ busy_j / (M · makespan).
  double efficiency() const {
    if (makespan <= 0.0 || per_proc.empty()) return 0.0;
    double busy = 0.0;
    for (const auto& p : per_proc) busy += p.busy_time;
    return busy / (static_cast<double>(per_proc.size()) * makespan);
  }

  /// Total communication seconds across processors.
  double total_comm_time() const {
    double s = 0.0;
    for (const auto& p : per_proc) s += p.comm_time;
    return s;
  }

  /// Total busy seconds across processors.
  double total_busy_time() const {
    double s = 0.0;
    for (const auto& p : per_proc) s += p.busy_time;
    return s;
  }
};

/// Runs `workload` on `cluster` under `policy`. `rng` drives all stochastic
/// elements of the run (communication jitter, scheduler randomness);
/// identical inputs produce identical results.
SimulationResult simulate(const Cluster& cluster,
                          const workload::Workload& workload,
                          SchedulingPolicy& policy, util::Rng rng,
                          const EngineConfig& cfg = {});

}  // namespace gasched::sim
