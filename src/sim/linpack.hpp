#pragma once
// Linpack-style execution-rate measurement (paper §3: "The execution rate
// is measured using Dongarra's Linpack benchmark").
//
// This is a real (small) dense LU solve with partial pivoting, timed to
// estimate the host's floating-point rate in Mflop/s. The examples use it
// to seed simulated processor rates from the actual machine, mirroring how
// the paper's system would calibrate real workers.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace gasched::sim {

/// Result of one Linpack-style run.
struct LinpackResult {
  std::size_t n = 0;          ///< matrix order
  double seconds = 0.0;       ///< wall time of factor+solve
  double mflops = 0.0;        ///< measured rate in Mflop/s
  double residual = 0.0;      ///< ||Ax − b||_inf (sanity check)
};

/// Factors a random dense n×n system and solves it, returning the measured
/// rate. The flop count uses the standard LU formula 2n³/3 + 2n².
/// `rng` seeds the matrix so runs are reproducible.
LinpackResult linpack_benchmark(std::size_t n, util::Rng& rng);

/// In-place LU factorisation with partial pivoting of the row-major n×n
/// matrix `a`; `piv` receives the pivot row for each column. Returns false
/// if the matrix is numerically singular.
bool lu_factor(std::vector<double>& a, std::size_t n,
               std::vector<std::size_t>& piv);

/// Solves LU x = b given the output of lu_factor (b is overwritten with x).
void lu_solve(const std::vector<double>& a, std::size_t n,
              const std::vector<std::size_t>& piv, std::vector<double>& b);

}  // namespace gasched::sim
