#pragma once
// Shared simulator types.

#include <cstdint>

namespace gasched::sim {

/// Processor identifier, dense in [0, M).
using ProcId = std::int32_t;

/// Sentinel for "no processor".
inline constexpr ProcId kInvalidProc = -1;

/// Simulation time in seconds.
using SimTime = double;

}  // namespace gasched::sim
