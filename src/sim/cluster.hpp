#pragma once
// Heterogeneous cluster description: M processors with individual base
// execution rates (Mflop/s, as measured by a Linpack-style benchmark in
// the paper), per-processor availability models, and a communication
// model for the scheduler→processor links. One extra (implicit) processor
// is dedicated to running the scheduler, per §3 of the paper.

#include <memory>
#include <string>
#include <vector>

#include "sim/availability.hpp"
#include "sim/comm_model.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace gasched::sim {

/// One worker processor.
struct Processor {
  ProcId id = kInvalidProc;
  /// Peak execution rate in Mflop/s (Linpack-measured in the paper).
  double base_rate = 0.0;
  /// Time-varying availability; effective rate = base_rate * multiplier(t).
  std::shared_ptr<const AvailabilityModel> availability;

  /// Effective rate at time t.
  double rate_at(SimTime t) const {
    return base_rate * availability->multiplier(t);
  }
};

/// Which availability model family to instantiate per processor.
enum class AvailabilityKind {
  kFixed,       ///< dedicated processors (the paper's experiment setup)
  kSinusoidal,  ///< periodic background load
  kRandomWalk,  ///< slowly drifting background load
  kTwoState,    ///< bursty on/off background load
};

/// Declarative cluster configuration; `build_cluster` realises it.
struct ClusterConfig {
  std::size_t num_processors = 50;  ///< paper: up to 50
  /// Base rates are drawn uniformly from [rate_lo, rate_hi] Mflop/s.
  double rate_lo = 10.0;
  double rate_hi = 100.0;
  /// Availability model family (kFixed reproduces the paper's §4.2 setup).
  AvailabilityKind availability = AvailabilityKind::kFixed;
  /// Fraction parameters for non-fixed availability models.
  double avail_lo = 0.5;
  double avail_hi = 1.0;
  /// Dwell/period for time-varying availability models (seconds).
  double avail_period = 500.0;
  /// Horizon for precomputed availability trajectories (seconds).
  double avail_horizon = 200'000.0;
  /// Communication link configuration.
  CommConfig comm;
  /// If true, links cost nothing (instantaneous message passing control).
  bool zero_comm = false;
  /// If true, per-link means drift over time (DriftingCommModel).
  bool drifting_comm = false;
  /// Drift step as a fraction of comm.mean_cost per dwell (drifting only).
  double comm_drift_step = 0.1;
};

/// A realised cluster: processors plus the link cost model.
struct Cluster {
  std::vector<Processor> processors;
  std::shared_ptr<const CommModel> comm;

  /// Number of worker processors M.
  std::size_t size() const noexcept { return processors.size(); }

  /// Sum of effective rates at time t (denominator of the paper's ψ).
  double total_rate_at(SimTime t) const {
    double s = 0.0;
    for (const auto& p : processors) s += p.rate_at(t);
    return s;
  }
};

/// Builds a cluster from `cfg`, drawing all random structure from `rng`.
/// Deterministic given (cfg, rng state).
Cluster build_cluster(const ClusterConfig& cfg, util::Rng& rng);

}  // namespace gasched::sim
