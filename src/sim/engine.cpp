#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gasched::sim {

Engine::Engine(const Cluster& cluster, const workload::Workload& workload,
               SchedulingPolicy& policy, util::Rng rng,
               const EngineConfig& cfg)
    : cluster_(cluster), policy_(policy), cfg_(cfg), rng_(std::move(rng)) {
  const std::size_t M = cluster_.size();
  if (M == 0) throw std::invalid_argument("simulate: empty cluster");
  tasks_ = workload.tasks;

  id_to_index_.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!id_to_index_.emplace(tasks_[i].id, i).second) {
      throw std::invalid_argument("simulate: duplicate task id");
    }
  }

  procs_.resize(M);
  for (auto& pr : procs_) {
    pr.rate_est = util::Smoother(cfg_.rate_nu);
    pr.comm_est = util::Smoother(cfg_.comm_nu);
  }

  if (cfg_.record_task_trace) {
    records_.resize(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      records_[i].id = tasks_[i].id;
      records_[i].arrival = tasks_[i].arrival_time;
      records_[i].attempts = 0;
    }
  }

  // Every arrival is pre-seeded, so the peak pending-event count is known
  // up front; pre-sizing the arena keeps steady state allocation-free.
  const std::size_t outages =
      cfg_.failures ? cfg_.failures->total_outages() : 0;
  events_.reserve(tasks_.size() + M + 2 * outages);

  // Seed the timeline: task arrivals, then one initial request per
  // processor (sequenced after simultaneous arrivals so the first
  // scheduling decision sees the t=0 workload), then outages.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    post(tasks_[i].arrival_time, EventKind::kArrival, kInvalidProc, i);
  }
  for (std::size_t j = 0; j < M; ++j) {
    post(0.0, EventKind::kRequest, static_cast<ProcId>(j));
  }
  if (cfg_.failures != nullptr) {
    for (std::size_t j = 0; j < M; ++j) {
      for (const Outage& o : cfg_.failures->outages(static_cast<ProcId>(j))) {
        post(o.down, EventKind::kFail, static_cast<ProcId>(j));
        post(o.up, EventKind::kRecover, static_cast<ProcId>(j));
      }
    }
  }
}

double Engine::remaining_exec_mflops(const ProcRuntime& pr) const {
  if (!pr.executing) return 0.0;
  const double span = pr.exec_end - pr.exec_start;
  if (span <= 0.0) return 0.0;
  const double frac = (pr.exec_end - now_) / span;
  return pr.exec_mflops * std::max(0.0, std::min(1.0, frac));
}

SystemView Engine::build_view() const {
  const std::size_t M = procs_.size();
  SystemView view;
  view.now = now_;
  view.procs.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    const auto& pr = procs_[j];
    auto& pv = view.procs[j];
    pv.id = static_cast<ProcId>(j);
    pv.rate = pr.rate_est.value_or(cluster_.processors[j].base_rate);
    pv.pending_mflops =
        pr.future_mflops + pr.inflight_mflops + remaining_exec_mflops(pr);
    pv.comm_estimate = pr.comm_est.value_or(0.0);
    pv.comm_observations = pr.comm_est.count();
  }
  return view;
}

void Engine::apply_assignment(const BatchAssignment& assignment) {
  if (assignment.per_proc.size() > procs_.size()) {
    throw std::runtime_error("simulate: assignment names unknown processor");
  }
  for (std::size_t j = 0; j < assignment.per_proc.size(); ++j) {
    auto& pr = procs_[j];
    bool added = false;
    for (const workload::TaskId id : assignment.per_proc[j]) {
      const auto it = id_to_index_.find(id);
      if (it == id_to_index_.end()) {
        throw std::runtime_error("simulate: assignment names unknown task");
      }
      pr.future.push_back(it->second);
      pr.future_mflops += tasks_[it->second].size_mflops;
      ++future_count_;
      added = true;
    }
    if (added && pr.parked && !pr.down) {
      pr.parked = false;
      post(now_, EventKind::kRequest, static_cast<ProcId>(j));
    }
  }
}

void Engine::try_schedule() {
  if (unscheduled_.empty()) return;
  const SystemView view = build_view();
  const auto t0 = std::chrono::steady_clock::now();
  BatchAssignment assignment = policy_.invoke(view, unscheduled_, rng_);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  policy_wall_ += wall;
  ++invocations_;
  if (cfg_.sched_time_scale > 0.0) {
    // The dedicated scheduler processor takes simulated time to compute
    // the schedule; the assignment lands later.
    pending_assignments_.push_back(std::move(assignment));
    post(now_ + cfg_.sched_time_scale * wall, EventKind::kAssign,
         kInvalidProc, pending_assignments_.size() - 1);
  } else {
    apply_assignment(assignment);
  }
}

// A failed processor returns everything it holds to the scheduler.
std::size_t Engine::requeue_holdings(std::size_t j) {
  auto& pr = procs_[j];
  std::size_t returned = 0;
  if (pr.executing) {
    // Work done so far is wasted but still counts as processing time.
    pr.stats.busy_time += std::max(0.0, now_ - pr.exec_start);
    unscheduled_.push_back(tasks_[pr.exec_task]);
    pr.executing = false;
    pr.exec_mflops = 0.0;
    ++returned;
  }
  if (pr.inflight) {
    unscheduled_.push_back(tasks_[pr.inflight_task]);
    pr.inflight = false;
    pr.inflight_mflops = 0.0;
    ++returned;
  }
  while (!pr.future.empty()) {
    unscheduled_.push_back(tasks_[pr.future.front()]);
    pr.future.pop_front();
    --future_count_;
    ++returned;
  }
  pr.future_mflops = 0.0;
  requeued_ += returned;
  return returned;
}

// Pops the head of `proc`'s future queue and puts it on the wire.
void Engine::start_dispatch(ProcId proc) {
  auto& pr = procs_[static_cast<std::size_t>(proc)];
  const std::size_t ti = pr.future.front();
  pr.future.pop_front();
  --future_count_;
  pr.future_mflops -= tasks_[ti].size_mflops;
  if (pr.future_mflops < 0.0) pr.future_mflops = 0.0;
  const double cost = cluster_.comm->sample(proc, now_, rng_);
  pr.comm_est.observe(cost);
  pr.stats.comm_time += cost;
  pr.inflight = true;
  pr.inflight_task = ti;
  pr.inflight_mflops = tasks_[ti].size_mflops;
  if (cfg_.record_task_trace) {
    records_[ti].dispatch = now_;
    records_[ti].comm_cost = cost;
    records_[ti].attempts += 1;
  }
  if (cfg_.serial_dispatch) link_busy_ = true;
  post(now_ + cost, EventKind::kDelivered, proc, ti, pr.epoch);
}

std::size_t Engine::event_budget() const {
  if (cfg_.max_event_factor == 0) return 0;
  return cfg_.max_event_factor *
         (tasks_.size() + procs_.size() +
          (cfg_.failures ? cfg_.failures->total_outages() : 0) + 1);
}

void Engine::step() {
  const Ev ev = events_.top();
  now_ = events_.top_time();
  events_.pop();
  if (const std::size_t budget = event_budget();
      budget != 0 && ++processed_ > budget) {
    throw std::runtime_error("simulate: event budget exceeded (livelock?)");
  }
  dispatch(ev);
}

void Engine::dispatch(const Ev& ev) {
  switch (ev.kind) {
    case EventKind::kArrival: {
      unscheduled_.push_back(tasks_[ev.payload]);
      // Coalesce simultaneous arrivals into one scheduling decision.
      const bool more_arrivals_now =
          !events_.empty() && events_.top().kind == EventKind::kArrival &&
          events_.top_time() == now_;
      if (!more_arrivals_now) try_schedule();
      break;
    }
    case EventKind::kRequest: {
      auto& pr = procs_[static_cast<std::size_t>(ev.proc)];
      if (pr.down) break;  // re-posted on recovery
      if (pr.inflight || pr.executing) break;  // stale duplicate
      if (pr.future.empty()) {
        pr.parked = true;
        if (!unscheduled_.empty()) try_schedule();
        break;
      }
      if (cfg_.serial_dispatch && link_busy_) {
        link_waiting_.push_back(ev.proc);
        break;
      }
      start_dispatch(ev.proc);
      break;
    }
    case EventKind::kDelivered: {
      auto& pr = procs_[static_cast<std::size_t>(ev.proc)];
      if (cfg_.serial_dispatch) {
        // The uplink frees regardless of whether the receiver survived.
        link_busy_ = false;
        while (!link_waiting_.empty()) {
          const ProcId next_proc = link_waiting_.front();
          link_waiting_.pop_front();
          auto& npr = procs_[static_cast<std::size_t>(next_proc)];
          if (npr.down || npr.inflight || npr.executing) {
            continue;  // state changed while queued at the link
          }
          if (npr.future.empty()) {
            // Its queue was drained (e.g. failure requeue elsewhere):
            // park so a future assignment wakes it up again.
            npr.parked = true;
            continue;
          }
          start_dispatch(next_proc);
          break;
        }
      }
      if (ev.epoch != pr.epoch) break;  // failed mid-transfer; requeued
      const auto& proc =
          cluster_.processors[static_cast<std::size_t>(ev.proc)];
      pr.inflight = false;
      pr.inflight_mflops = 0.0;
      const double duration = integrate_exec_time(
          *proc.availability, proc.base_rate, tasks_[ev.payload].size_mflops,
          now_, cfg_.avail_dt);
      pr.executing = true;
      pr.exec_task = ev.payload;
      pr.exec_mflops = tasks_[ev.payload].size_mflops;
      pr.exec_start = now_;
      pr.exec_end = now_ + duration;
      if (cfg_.record_task_trace) records_[ev.payload].start = now_;
      post(now_ + duration, EventKind::kCompleted, ev.proc, ev.payload,
           pr.epoch);
      break;
    }
    case EventKind::kCompleted: {
      auto& pr = procs_[static_cast<std::size_t>(ev.proc)];
      if (ev.epoch != pr.epoch) break;  // failed mid-execution; requeued
      const double duration = pr.exec_end - pr.exec_start;
      if (duration > 0.0) {
        pr.rate_est.observe(tasks_[ev.payload].size_mflops / duration);
      }
      pr.stats.busy_time += duration;
      pr.executing = false;
      pr.exec_mflops = 0.0;
      pr.stats.tasks += 1;
      pr.stats.work_mflops += tasks_[ev.payload].size_mflops;
      ++completed_;
      response_sum_ += now_ - tasks_[ev.payload].arrival_time;
      makespan_ = std::max(makespan_, now_);
      if (cfg_.record_task_trace) {
        records_[ev.payload].completion = now_;
        records_[ev.payload].proc = ev.proc;
      }
      post(now_, EventKind::kRequest, ev.proc);
      break;
    }
    case EventKind::kFail: {
      auto& pr = procs_[static_cast<std::size_t>(ev.proc)];
      if (pr.down) break;
      pr.down = true;
      pr.parked = false;
      ++pr.epoch;
      pr.stats.failures += 1;
      const std::size_t returned =
          requeue_holdings(static_cast<std::size_t>(ev.proc));
      if (returned > 0) try_schedule();
      break;
    }
    case EventKind::kRecover: {
      auto& pr = procs_[static_cast<std::size_t>(ev.proc)];
      if (!pr.down) break;
      pr.down = false;
      post(now_, EventKind::kRequest, ev.proc);
      break;
    }
    case EventKind::kAssign: {
      apply_assignment(pending_assignments_[ev.payload]);
      pending_assignments_[ev.payload] = BatchAssignment{};  // free memory
      break;
    }
  }
}

bool Engine::kick() {
  try_schedule();
  return has_events();
}

void Engine::inject_task(const workload::Task& task, SimTime at) {
  const std::size_t i = tasks_.size();
  tasks_.push_back(task);
  if (!id_to_index_.emplace(task.id, i).second) {
    // A previously-exported task may legitimately migrate back; its old
    // index is dead (the arrival already fired and it left unscheduled_),
    // so the id can simply point at the fresh entry.
    id_to_index_[task.id] = i;
  }
  if (cfg_.record_task_trace) {
    TaskRecord rec;
    rec.id = task.id;
    rec.arrival = task.arrival_time;
    rec.attempts = 0;
    records_.push_back(rec);
  }
  post(std::max(at, now_), EventKind::kArrival, kInvalidProc, i);
}

std::vector<workload::Task> Engine::take_unscheduled(std::size_t max_tasks) {
  std::vector<workload::Task> taken;
  const std::size_t n = std::min(max_tasks, unscheduled_.size());
  taken.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    taken.push_back(std::move(unscheduled_.back()));
    unscheduled_.pop_back();
    id_to_index_.erase(taken.back().id);
    ++exported_;
  }
  return taken;
}

SimulationResult Engine::result() const {
  SimulationResult result;
  result.makespan = makespan_;
  result.tasks_completed = completed_;
  result.per_proc.resize(procs_.size());
  for (std::size_t j = 0; j < procs_.size(); ++j) {
    result.per_proc[j] = procs_[j].stats;
  }
  result.scheduler_invocations = invocations_;
  result.scheduler_wall_seconds = policy_wall_;
  result.mean_response_time =
      completed_ > 0 ? response_sum_ / static_cast<double>(completed_) : 0.0;
  result.tasks_requeued = requeued_;
  if (cfg_.record_task_trace) result.task_trace = records_;
  return result;
}

SimulationResult Engine::run() {
  while (completed_ + exported_ < tasks_.size()) {
    if (events_.empty()) {
      // No pending events but work remains: give the policy one more
      // chance (e.g. everything parked after a burst), else the protocol
      // is wedged.
      try_schedule();
      if (events_.empty()) {
        throw std::runtime_error(
            "simulate: deadlock — tasks remain but no events pending "
            "(policy " +
            policy_.name() + " assigned nothing)");
      }
      continue;
    }
    step();
  }
  return result();
}

SimulationResult simulate(const Cluster& cluster,
                          const workload::Workload& workload,
                          SchedulingPolicy& policy, util::Rng rng,
                          const EngineConfig& cfg) {
  Engine engine(cluster, workload, policy, std::move(rng), cfg);
  return engine.run();
}

}  // namespace gasched::sim
