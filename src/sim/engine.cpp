#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "util/log.hpp"

namespace gasched::sim {

namespace {

enum class EventKind {
  kArrival,
  kRequest,
  kDelivered,
  kCompleted,
  kFail,
  kRecover,
  kAssign,
};

struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker: FIFO among simultaneous events
  EventKind kind = EventKind::kArrival;
  ProcId proc = kInvalidProc;
  std::size_t payload = 0;  // task index, or pending-assignment index
  std::uint64_t epoch = 0;  // proc epoch at posting (failure staleness)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ProcRuntime {
  std::deque<std::size_t> future;  // task indices awaiting dispatch
  double future_mflops = 0.0;      // running sum of queued sizes
  bool parked = false;             // idle with empty queue
  bool down = false;               // mid-outage
  std::uint64_t epoch = 0;         // bumped on failure; stale events drop
  bool inflight = false;
  std::size_t inflight_task = 0;
  double inflight_mflops = 0.0;
  bool executing = false;
  std::size_t exec_task = 0;
  double exec_mflops = 0.0;
  SimTime exec_start = 0.0;
  SimTime exec_end = 0.0;
  util::Smoother rate_est;
  util::Smoother comm_est;
  ProcessorStats stats;
};

}  // namespace

SimulationResult simulate(const Cluster& cluster,
                          const workload::Workload& workload,
                          SchedulingPolicy& policy, util::Rng rng,
                          const EngineConfig& cfg) {
  const std::size_t M = cluster.size();
  if (M == 0) throw std::invalid_argument("simulate: empty cluster");
  const auto& tasks = workload.tasks;

  std::unordered_map<workload::TaskId, std::size_t> id_to_index;
  id_to_index.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!id_to_index.emplace(tasks[i].id, i).second) {
      throw std::invalid_argument("simulate: duplicate task id");
    }
  }

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  auto post = [&](SimTime t, EventKind k, ProcId p, std::size_t payload = 0,
                  std::uint64_t epoch = 0) {
    events.push(Event{t, seq++, k, p, payload, epoch});
  };

  std::vector<ProcRuntime> procs(M);
  for (auto& pr : procs) {
    pr.rate_est = util::Smoother(cfg.rate_nu);
    pr.comm_est = util::Smoother(cfg.comm_nu);
  }

  std::deque<workload::Task> unscheduled;
  std::vector<BatchAssignment> pending_assignments;
  SimulationResult result;
  result.per_proc.resize(M);
  SimTime now = 0.0;
  std::size_t completed = 0;
  double response_sum = 0.0;
  double policy_wall = 0.0;

  // Per-task bookkeeping for the optional trace.
  std::vector<TaskRecord> records;
  if (cfg.record_task_trace) {
    records.resize(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      records[i].id = tasks[i].id;
      records[i].arrival = tasks[i].arrival_time;
      records[i].attempts = 0;
    }
  }

  auto remaining_exec_mflops = [&](const ProcRuntime& pr) -> double {
    if (!pr.executing) return 0.0;
    const double span = pr.exec_end - pr.exec_start;
    if (span <= 0.0) return 0.0;
    const double frac = (pr.exec_end - now) / span;
    return pr.exec_mflops * std::max(0.0, std::min(1.0, frac));
  };

  auto build_view = [&]() -> SystemView {
    SystemView view;
    view.now = now;
    view.procs.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      const auto& pr = procs[j];
      auto& pv = view.procs[j];
      pv.id = static_cast<ProcId>(j);
      pv.rate = pr.rate_est.value_or(cluster.processors[j].base_rate);
      pv.pending_mflops =
          pr.future_mflops + pr.inflight_mflops + remaining_exec_mflops(pr);
      pv.comm_estimate = pr.comm_est.value_or(0.0);
      pv.comm_observations = pr.comm_est.count();
    }
    return view;
  };

  auto apply_assignment = [&](const BatchAssignment& assignment) {
    if (assignment.per_proc.size() > M) {
      throw std::runtime_error("simulate: assignment names unknown processor");
    }
    for (std::size_t j = 0; j < assignment.per_proc.size(); ++j) {
      auto& pr = procs[j];
      bool added = false;
      for (const workload::TaskId id : assignment.per_proc[j]) {
        const auto it = id_to_index.find(id);
        if (it == id_to_index.end()) {
          throw std::runtime_error("simulate: assignment names unknown task");
        }
        pr.future.push_back(it->second);
        pr.future_mflops += tasks[it->second].size_mflops;
        added = true;
      }
      if (added && pr.parked && !pr.down) {
        pr.parked = false;
        post(now, EventKind::kRequest, static_cast<ProcId>(j));
      }
    }
  };

  auto try_schedule = [&]() {
    if (unscheduled.empty()) return;
    const SystemView view = build_view();
    const auto t0 = std::chrono::steady_clock::now();
    BatchAssignment assignment = policy.invoke(view, unscheduled, rng);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    policy_wall += wall;
    ++result.scheduler_invocations;
    if (cfg.sched_time_scale > 0.0) {
      // The dedicated scheduler processor takes simulated time to compute
      // the schedule; the assignment lands later.
      pending_assignments.push_back(std::move(assignment));
      post(now + cfg.sched_time_scale * wall, EventKind::kAssign,
           kInvalidProc, pending_assignments.size() - 1);
    } else {
      apply_assignment(assignment);
    }
  };

  // A failed processor returns everything it holds to the scheduler.
  auto requeue_holdings = [&](std::size_t j) {
    auto& pr = procs[j];
    std::size_t returned = 0;
    if (pr.executing) {
      // Work done so far is wasted but still counts as processing time.
      pr.stats.busy_time += std::max(0.0, now - pr.exec_start);
      unscheduled.push_back(tasks[pr.exec_task]);
      pr.executing = false;
      pr.exec_mflops = 0.0;
      ++returned;
    }
    if (pr.inflight) {
      unscheduled.push_back(tasks[pr.inflight_task]);
      pr.inflight = false;
      pr.inflight_mflops = 0.0;
      ++returned;
    }
    while (!pr.future.empty()) {
      unscheduled.push_back(tasks[pr.future.front()]);
      pr.future.pop_front();
      ++returned;
    }
    pr.future_mflops = 0.0;
    result.tasks_requeued += returned;
    return returned;
  };

  // Scheduler uplink state (serial_dispatch mode).
  bool link_busy = false;
  std::deque<ProcId> link_waiting;

  // Pops the head of `proc`'s future queue and puts it on the wire.
  auto start_dispatch = [&](ProcId proc) {
    auto& pr = procs[static_cast<std::size_t>(proc)];
    const std::size_t ti = pr.future.front();
    pr.future.pop_front();
    pr.future_mflops -= tasks[ti].size_mflops;
    if (pr.future_mflops < 0.0) pr.future_mflops = 0.0;
    const double cost = cluster.comm->sample(proc, now, rng);
    pr.comm_est.observe(cost);
    pr.stats.comm_time += cost;
    pr.inflight = true;
    pr.inflight_task = ti;
    pr.inflight_mflops = tasks[ti].size_mflops;
    if (cfg.record_task_trace) {
      records[ti].dispatch = now;
      records[ti].comm_cost = cost;
      records[ti].attempts += 1;
    }
    if (cfg.serial_dispatch) link_busy = true;
    post(now + cost, EventKind::kDelivered, proc, ti, pr.epoch);
  };

  // Seed the timeline: task arrivals, then one initial request per
  // processor (sequenced after simultaneous arrivals so the first
  // scheduling decision sees the t=0 workload), then outages.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    post(tasks[i].arrival_time, EventKind::kArrival, kInvalidProc, i);
  }
  for (std::size_t j = 0; j < M; ++j) {
    post(0.0, EventKind::kRequest, static_cast<ProcId>(j));
  }
  if (cfg.failures != nullptr) {
    for (std::size_t j = 0; j < M; ++j) {
      for (const Outage& o : cfg.failures->outages(static_cast<ProcId>(j))) {
        post(o.down, EventKind::kFail, static_cast<ProcId>(j));
        post(o.up, EventKind::kRecover, static_cast<ProcId>(j));
      }
    }
  }

  const std::size_t event_budget =
      cfg.max_event_factor == 0
          ? 0
          : cfg.max_event_factor *
                (tasks.size() + M +
                 (cfg.failures ? cfg.failures->total_outages() : 0) + 1);
  std::size_t processed = 0;

  while (completed < tasks.size()) {
    if (events.empty()) {
      // No pending events but work remains: give the policy one more
      // chance (e.g. everything parked after a burst), else the protocol
      // is wedged.
      try_schedule();
      if (events.empty()) {
        throw std::runtime_error(
            "simulate: deadlock — tasks remain but no events pending "
            "(policy " +
            policy.name() + " assigned nothing)");
      }
      continue;
    }
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    if (event_budget != 0 && ++processed > event_budget) {
      throw std::runtime_error("simulate: event budget exceeded (livelock?)");
    }

    switch (ev.kind) {
      case EventKind::kArrival: {
        unscheduled.push_back(tasks[ev.payload]);
        // Coalesce simultaneous arrivals into one scheduling decision.
        const bool more_arrivals_now =
            !events.empty() && events.top().kind == EventKind::kArrival &&
            events.top().time == now;
        if (!more_arrivals_now) try_schedule();
        break;
      }
      case EventKind::kRequest: {
        auto& pr = procs[static_cast<std::size_t>(ev.proc)];
        if (pr.down) break;  // re-posted on recovery
        if (pr.inflight || pr.executing) break;  // stale duplicate
        if (pr.future.empty()) {
          pr.parked = true;
          if (!unscheduled.empty()) try_schedule();
          break;
        }
        if (cfg.serial_dispatch && link_busy) {
          link_waiting.push_back(ev.proc);
          break;
        }
        start_dispatch(ev.proc);
        break;
      }
      case EventKind::kDelivered: {
        auto& pr = procs[static_cast<std::size_t>(ev.proc)];
        if (cfg.serial_dispatch) {
          // The uplink frees regardless of whether the receiver survived.
          link_busy = false;
          while (!link_waiting.empty()) {
            const ProcId next_proc = link_waiting.front();
            link_waiting.pop_front();
            auto& npr = procs[static_cast<std::size_t>(next_proc)];
            if (npr.down || npr.inflight || npr.executing) {
              continue;  // state changed while queued at the link
            }
            if (npr.future.empty()) {
              // Its queue was drained (e.g. failure requeue elsewhere):
              // park so a future assignment wakes it up again.
              npr.parked = true;
              continue;
            }
            start_dispatch(next_proc);
            break;
          }
        }
        if (ev.epoch != pr.epoch) break;  // failed mid-transfer; requeued
        const auto& proc =
            cluster.processors[static_cast<std::size_t>(ev.proc)];
        pr.inflight = false;
        pr.inflight_mflops = 0.0;
        const double duration = integrate_exec_time(
            *proc.availability, proc.base_rate, tasks[ev.payload].size_mflops,
            now, cfg.avail_dt);
        pr.executing = true;
        pr.exec_task = ev.payload;
        pr.exec_mflops = tasks[ev.payload].size_mflops;
        pr.exec_start = now;
        pr.exec_end = now + duration;
        if (cfg.record_task_trace) records[ev.payload].start = now;
        post(now + duration, EventKind::kCompleted, ev.proc, ev.payload,
             pr.epoch);
        break;
      }
      case EventKind::kCompleted: {
        auto& pr = procs[static_cast<std::size_t>(ev.proc)];
        if (ev.epoch != pr.epoch) break;  // failed mid-execution; requeued
        const double duration = pr.exec_end - pr.exec_start;
        if (duration > 0.0) {
          pr.rate_est.observe(tasks[ev.payload].size_mflops / duration);
        }
        pr.stats.busy_time += duration;
        pr.executing = false;
        pr.exec_mflops = 0.0;
        pr.stats.tasks += 1;
        pr.stats.work_mflops += tasks[ev.payload].size_mflops;
        ++completed;
        response_sum += now - tasks[ev.payload].arrival_time;
        result.makespan = std::max(result.makespan, now);
        if (cfg.record_task_trace) {
          records[ev.payload].completion = now;
          records[ev.payload].proc = ev.proc;
        }
        post(now, EventKind::kRequest, ev.proc);
        break;
      }
      case EventKind::kFail: {
        auto& pr = procs[static_cast<std::size_t>(ev.proc)];
        if (pr.down) break;
        pr.down = true;
        pr.parked = false;
        ++pr.epoch;
        pr.stats.failures += 1;
        const std::size_t returned =
            requeue_holdings(static_cast<std::size_t>(ev.proc));
        if (returned > 0) try_schedule();
        break;
      }
      case EventKind::kRecover: {
        auto& pr = procs[static_cast<std::size_t>(ev.proc)];
        if (!pr.down) break;
        pr.down = false;
        post(now, EventKind::kRequest, ev.proc);
        break;
      }
      case EventKind::kAssign: {
        apply_assignment(pending_assignments[ev.payload]);
        pending_assignments[ev.payload] = BatchAssignment{};  // free memory
        break;
      }
    }
  }

  result.tasks_completed = completed;
  result.scheduler_wall_seconds = policy_wall;
  result.mean_response_time =
      completed > 0 ? response_sum / static_cast<double>(completed) : 0.0;
  for (std::size_t j = 0; j < M; ++j) result.per_proc[j] = procs[j].stats;
  if (cfg.record_task_trace) result.task_trace = std::move(records);
  return result;
}

}  // namespace gasched::sim
