#pragma once
// The boundary between the discrete-event engine and scheduling logic.
//
// The engine owns ground truth (true rates, true link costs); schedulers
// only ever see a `SystemView` built from *observable* quantities: the
// Linpack-style base rates, smoothed observed execution rates, smoothed
// observed per-link communication costs, and the load already assigned to
// each processor. This enforces the paper's information model — the
// scheduler "estimates the communication costs between each client and
// server using historical information" (§5).

#include <deque>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"
#include "workload/task.hpp"

namespace gasched::sim {

/// Observable state of one processor at scheduling time.
struct ProcessorView {
  ProcId id = kInvalidProc;
  /// Estimated current execution rate P_j in Mflop/s: Linpack base rate
  /// blended with smoothed observed throughput.
  double rate = 0.0;
  /// Previously assigned but unprocessed load L_j in MFLOPs (future queue
  /// + in-flight dispatch + remaining work of the executing task).
  double pending_mflops = 0.0;
  /// Smoothed estimate Γc_j of one dispatch's communication cost to this
  /// processor (seconds); 0 until the link has been observed.
  double comm_estimate = 0.0;
  /// Number of completed communications observed on this link.
  std::size_t comm_observations = 0;

  /// Estimated time for this processor to drain its pending load (δ_j of
  /// the paper's fitness function).
  double drain_time() const { return rate > 0.0 ? pending_mflops / rate : 0.0; }
};

/// Snapshot handed to a scheduler at invocation time.
struct SystemView {
  SimTime now = 0.0;
  std::vector<ProcessorView> procs;

  /// Number of processors M.
  std::size_t size() const noexcept { return procs.size(); }

  /// Σ_j P_j over all processors.
  double total_rate() const noexcept {
    double s = 0.0;
    for (const auto& p : procs) s += p.rate;
    return s;
  }
};

/// Result of one scheduler invocation: for each processor, the ordered
/// list of tasks appended to that processor's future queue.
struct BatchAssignment {
  /// per_proc[j] lists task ids in dispatch order for processor j.
  std::vector<std::vector<workload::TaskId>> per_proc;

  /// Creates an empty assignment for `procs` processors.
  static BatchAssignment empty(std::size_t procs) {
    BatchAssignment a;
    a.per_proc.resize(procs);
    return a;
  }

  /// Total number of tasks assigned.
  std::size_t total() const noexcept {
    std::size_t n = 0;
    for (const auto& q : per_proc) n += q.size();
    return n;
  }
};

/// Strategy invoked by the engine whenever scheduling may make progress:
/// at task arrival, and whenever a processor goes idle with an empty
/// future queue while unscheduled tasks remain.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Consumes zero or more tasks from the front of `queue` and returns
  /// their assignment. Must not assign a task it did not consume.
  virtual BatchAssignment invoke(const SystemView& view,
                                 std::deque<workload::Task>& queue,
                                 util::Rng& rng) = 0;

  /// Display name (e.g. "PN", "ZO", "EF").
  virtual std::string name() const = 0;
};

}  // namespace gasched::sim
