#pragma once
// Processor availability models (paper §3): "The availability of each
// processor can vary over time (processors are not dedicated and may have
// other tasks that partially use their resources)."
//
// A model maps simulation time to a multiplier in (0, 1]; a processor's
// effective execution rate at time t is base_rate * multiplier(t). The
// paper's experiments (§4.2) fix the rate (FixedAvailability); the other
// models exercise the scheduler's adaptation machinery and are used by the
// dynamic-cluster example and the robustness tests.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace gasched::sim {

/// Interface: time-varying fraction of a processor's capacity that is
/// available to the scheduler.
class AvailabilityModel {
 public:
  virtual ~AvailabilityModel() = default;
  /// Available fraction at time `t`, in (0, 1]. Implementations must be
  /// deterministic functions of (construction parameters, t).
  virtual double multiplier(SimTime t) const = 0;
  /// Model name for reports.
  virtual std::string name() const = 0;
  /// True when multiplier(t) is independent of t; lets the execution-time
  /// integrator skip numeric stepping.
  virtual bool constant() const { return false; }
};

/// Constant availability (dedicated processor).
class FixedAvailability final : public AvailabilityModel {
 public:
  /// `fraction` is clamped into (0, 1]; default fully available.
  explicit FixedAvailability(double fraction = 1.0);
  double multiplier(SimTime) const override { return fraction_; }
  std::string name() const override { return "fixed"; }
  bool constant() const override { return true; }

 private:
  double fraction_;
};

/// Smooth periodic load (e.g. interactive users during working hours):
/// availability oscillates between `lo` and `hi` with the given period.
class SinusoidalAvailability final : public AvailabilityModel {
 public:
  /// Requires 0 < lo <= hi <= 1 and period > 0. `phase` in radians.
  SinusoidalAvailability(double lo, double hi, double period,
                         double phase = 0.0);
  double multiplier(SimTime t) const override;
  std::string name() const override { return "sinusoidal"; }

 private:
  double lo_, hi_, period_, phase_;
};

/// Piecewise-constant random walk: availability is resampled every
/// `dwell` seconds by a bounded random step. The trajectory is
/// precomputed from a seed, so multiplier(t) is a pure function.
class RandomWalkAvailability final : public AvailabilityModel {
 public:
  /// Requires 0 < lo <= hi <= 1, dwell > 0, horizon > 0. The walk starts
  /// at the midpoint of [lo, hi]; after `horizon` the last value holds.
  RandomWalkAvailability(double lo, double hi, double dwell, double step,
                         SimTime horizon, std::uint64_t seed);
  double multiplier(SimTime t) const override;
  std::string name() const override { return "random_walk"; }

 private:
  double lo_, hi_, dwell_;
  std::vector<double> levels_;
};

/// Two-state (Markov on/off-ish) model: the machine alternates between a
/// "loaded" level and full availability with exponential dwell times,
/// discretised on a fixed grid and precomputed from a seed.
class TwoStateAvailability final : public AvailabilityModel {
 public:
  /// `loaded_fraction` in (0, 1]: capacity left while loaded. Mean dwell
  /// times must be positive.
  TwoStateAvailability(double loaded_fraction, double mean_free_dwell,
                       double mean_loaded_dwell, SimTime horizon,
                       std::uint64_t seed);
  double multiplier(SimTime t) const override;
  std::string name() const override { return "two_state"; }

 private:
  struct Segment {
    SimTime until;
    double level;
  };
  std::vector<Segment> segments_;
  double final_level_;
};

/// Computes the wall-clock duration needed to execute `work_mflops` on a
/// processor with `base_rate` Mflop/s starting at `start`. Constant models
/// are evaluated in closed form; time-varying models are integrated with
/// step `dt` (the final partial step is interpolated).
SimTime integrate_exec_time(const AvailabilityModel& model, double base_rate,
                            double work_mflops, SimTime start,
                            double dt = 1.0);

}  // namespace gasched::sim
