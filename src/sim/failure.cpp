#include "sim/failure.hpp"

#include <stdexcept>

namespace gasched::sim {

namespace {
const std::vector<Outage> kNoOutages;
}

FailureTrace::FailureTrace(const FailureConfig& cfg, std::size_t procs,
                           util::Rng& rng) {
  if (!(cfg.mean_uptime > 0.0) || !(cfg.mean_downtime > 0.0) ||
      !(cfg.horizon > 0.0) || cfg.failing_fraction < 0.0 ||
      cfg.failing_fraction > 1.0) {
    throw std::invalid_argument("FailureTrace: invalid FailureConfig");
  }
  per_proc_.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    if (!rng.bernoulli(cfg.failing_fraction)) continue;
    SimTime t = rng.exponential(cfg.mean_uptime);
    while (t < cfg.horizon) {
      Outage o;
      o.down = t;
      o.up = t + std::max(rng.exponential(cfg.mean_downtime), 1e-6);
      per_proc_[j].push_back(o);
      t = o.up + rng.exponential(cfg.mean_uptime);
    }
  }
}

const std::vector<Outage>& FailureTrace::outages(ProcId j) const {
  const auto idx = static_cast<std::size_t>(j);
  return idx < per_proc_.size() ? per_proc_[idx] : kNoOutages;
}

bool FailureTrace::empty() const {
  for (const auto& v : per_proc_) {
    if (!v.empty()) return false;
  }
  return true;
}

bool FailureTrace::up_at(ProcId j, SimTime t) const {
  for (const auto& o : outages(j)) {
    if (t >= o.down && t < o.up) return false;
    if (o.down > t) break;
  }
  return true;
}

std::size_t FailureTrace::total_outages() const {
  std::size_t n = 0;
  for (const auto& v : per_proc_) n += v.size();
  return n;
}

}  // namespace gasched::sim
