#pragma once
// Processor failure/recovery model.
//
// The paper's §3 design keeps all task queues at the scheduler precisely
// because workers are unreliable: "we wish to avoid repeatedly issuing the
// same task multiple times, e.g., when a machine is switched off". This
// module generates reproducible outage traces; the engine re-queues any
// work held by a failed processor (in-flight, executing, and its future
// queue) back to the scheduler, which reassigns it.

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace gasched::sim {

/// One outage window [down, up).
struct Outage {
  SimTime down = 0.0;
  SimTime up = 0.0;
};

/// Parameters for generating exponential up/down alternation per
/// processor.
struct FailureConfig {
  double mean_uptime = 5000.0;   ///< exponential time between failures (s)
  double mean_downtime = 200.0;  ///< exponential repair time (s)
  SimTime horizon = 100000.0;    ///< outages generated up to this time
  double failing_fraction = 1.0; ///< fraction of processors that can fail
};

/// Precomputed outage windows for a cluster.
class FailureTrace {
 public:
  /// Empty trace: nothing ever fails.
  FailureTrace() = default;

  /// Generates outages for `procs` processors from `cfg` using `rng`.
  FailureTrace(const FailureConfig& cfg, std::size_t procs, util::Rng& rng);

  /// Outage windows (sorted, non-overlapping) of processor `j`; empty when
  /// the trace has no entry for it.
  const std::vector<Outage>& outages(ProcId j) const;

  /// True when no processor has any outage.
  bool empty() const;

  /// True when processor `j` is operational at time `t`.
  bool up_at(ProcId j, SimTime t) const;

  /// Total number of outages across all processors.
  std::size_t total_outages() const;

 private:
  std::vector<std::vector<Outage>> per_proc_;
};

}  // namespace gasched::sim
