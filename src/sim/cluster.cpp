#include "sim/cluster.hpp"

#include <stdexcept>

namespace gasched::sim {

Cluster build_cluster(const ClusterConfig& cfg, util::Rng& rng) {
  if (cfg.num_processors == 0) {
    throw std::invalid_argument("build_cluster: need at least one processor");
  }
  if (!(cfg.rate_lo > 0.0) || !(cfg.rate_hi >= cfg.rate_lo)) {
    throw std::invalid_argument("build_cluster: need 0 < rate_lo <= rate_hi");
  }
  Cluster cluster;
  cluster.processors.reserve(cfg.num_processors);
  for (std::size_t j = 0; j < cfg.num_processors; ++j) {
    Processor p;
    p.id = static_cast<ProcId>(j);
    p.base_rate = rng.uniform(cfg.rate_lo, cfg.rate_hi);
    switch (cfg.availability) {
      case AvailabilityKind::kFixed:
        p.availability = std::make_shared<FixedAvailability>(1.0);
        break;
      case AvailabilityKind::kSinusoidal:
        p.availability = std::make_shared<SinusoidalAvailability>(
            cfg.avail_lo, cfg.avail_hi, cfg.avail_period,
            rng.uniform(0.0, 6.28318530717958648));
        break;
      case AvailabilityKind::kRandomWalk:
        p.availability = std::make_shared<RandomWalkAvailability>(
            cfg.avail_lo, cfg.avail_hi, cfg.avail_period,
            0.25 * (cfg.avail_hi - cfg.avail_lo), cfg.avail_horizon,
            rng.next_u64());
        break;
      case AvailabilityKind::kTwoState:
        p.availability = std::make_shared<TwoStateAvailability>(
            cfg.avail_lo, cfg.avail_period, cfg.avail_period,
            cfg.avail_horizon, rng.next_u64());
        break;
    }
    cluster.processors.push_back(std::move(p));
  }
  if (cfg.zero_comm) {
    cluster.comm = std::make_shared<ZeroCommModel>(cfg.num_processors);
  } else if (cfg.drifting_comm) {
    cluster.comm = std::make_shared<DriftingCommModel>(
        cfg.comm, cfg.num_processors, cfg.comm_drift_step, cfg.avail_period,
        cfg.avail_horizon, rng);
  } else {
    cluster.comm =
        std::make_shared<NormalCommModel>(cfg.comm, cfg.num_processors, rng);
  }
  return cluster;
}

}  // namespace gasched::sim
