#pragma once
// Scalable event core: an indexed calendar/bucket priority queue sized
// for millions of pending events (Brown 1988, adapted).
//
// The paper's §3 protocol only needs tens of processors, so the engine
// historically ran on one std::priority_queue. At cloud scale — thousands
// of processors, millions of tasks, several federated engines — the event
// set itself becomes the hot data structure. CalendarQueue provides:
//
//  * **O(1) amortised insert and pop.** Events hash into time buckets of
//    width ~the mean inter-event gap; each bucket holds a short sorted
//    intrusive list, and the dequeue cursor walks buckets in calendar
//    order. The bucket count doubles/halves with occupancy, and a
//    re-width rebuild fires when walk/scan work per operation degrades —
//    the event-time spread can drift at constant size (the hold pattern:
//    a wide preload collapsing to a dense moving front) — so both
//    triggers amortise the relink across the operations that paid for it.
//  * **Arena-allocated events.** Nodes live in one contiguous slab with
//    an intrusive free list: zero per-event heap allocation in steady
//    state (slots are recycled), and reserve() pre-sizes the slab so even
//    the warm-up allocates O(log n) times.
//  * **Generation-stamped O(1) cancellation.** push() returns a Handle
//    {slot, generation}; cancel() unlinks the node directly — no
//    tombstones, no scans, and a stale handle (slot already recycled)
//    is detected by its generation and safely refused.
//  * **Exact FIFO tie-break.** Every push stamps a monotonically
//    increasing sequence number; pops are strictly ordered by
//    (time, seq), so simultaneous events dequeue in push order — the
//    contract the engine's determinism (and every golden figure CSV)
//    is built on. A correct calendar queue and a binary heap are
//    observationally identical under this total order, which is what
//    lets sim::Engine adopt it with byte-identical results.
//
// Times must be finite and non-negative (simulation clocks only).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace gasched::sim {

/// Calendar/bucket min-priority queue over (time, push-order). `Payload`
/// is any movable value type carried alongside the timestamp.
template <class Payload>
class CalendarQueue {
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

 public:
  /// Ticket for one pushed event; valid until the event is popped or
  /// cancelled. Slot recycling bumps the generation, so a stale handle
  /// never cancels somebody else's event.
  struct Handle {
    std::uint32_t slot = kNull;
    std::uint32_t gen = 0;
  };

  CalendarQueue() { rebuild(kMinBuckets); }

  /// Pre-sizes the arena for `n` concurrently-pending events.
  void reserve(std::size_t n) { arena_.reserve(n); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Inserts an event. O(1) amortised. `time` must be finite and >= 0.
  Handle push(SimTime time, Payload payload) {
    if (!(time >= 0.0) || !std::isfinite(time)) {
      throw std::invalid_argument(
          "CalendarQueue: event time must be finite and non-negative");
    }
    const std::uint32_t slot = allocate();
    Node& n = arena_[slot];
    n.time = time;
    n.seq = next_seq_++;
    n.payload = std::move(payload);
    link(slot);
    ++size_;
    if (min_ == kNull || before(slot, min_)) set_cursor(slot);
    maybe_resize();
    return Handle{slot, arena_[slot].gen};
  }

  /// Earliest event's timestamp. Requires !empty().
  SimTime top_time() const { return arena_[min_].time; }

  /// Earliest event's payload. Requires !empty().
  const Payload& top() const { return arena_[min_].payload; }

  /// Removes the earliest event. Requires !empty().
  void pop() {
    const std::uint32_t slot = min_;
    unlink(slot);
    release(slot);
    --size_;
    min_ = kNull;
    if (size_ > 0) find_min();
    maybe_resize();
  }

  /// Cancels the event behind `h` in O(1). Returns false (and does
  /// nothing) when the event was already popped or cancelled.
  bool cancel(Handle h) {
    if (h.slot >= arena_.size()) return false;
    Node& n = arena_[h.slot];
    if (!n.live || n.gen != h.gen) return false;
    unlink(h.slot);
    release(h.slot);
    --size_;
    if (min_ == h.slot) {
      min_ = kNull;
      if (size_ > 0) find_min();
    }
    maybe_resize();
    return true;
  }

  /// True when `h` still names a pending event.
  bool pending(Handle h) const {
    return h.slot < arena_.size() && arena_[h.slot].live &&
           arena_[h.slot].gen == h.gen;
  }

 private:
  struct Node {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
    std::uint32_t bucket = kNull;
    std::uint32_t gen = 0;
    bool live = false;
    Payload payload{};
  };

  bool before(std::uint32_t a, std::uint32_t b) const {
    const Node& na = arena_[a];
    const Node& nb = arena_[b];
    if (na.time != nb.time) return na.time < nb.time;
    return na.seq < nb.seq;
  }

  std::uint32_t allocate() {
    if (free_ != kNull) {
      const std::uint32_t slot = free_;
      free_ = arena_[slot].next;
      arena_[slot].live = true;
      return slot;
    }
    arena_.emplace_back();
    arena_.back().live = true;
    return static_cast<std::uint32_t>(arena_.size() - 1);
  }

  void release(std::uint32_t slot) {
    Node& n = arena_[slot];
    n.live = false;
    ++n.gen;  // invalidates outstanding handles to this slot
    n.next = free_;
    free_ = slot;
  }

  std::size_t bucket_of(SimTime time) const {
    // width_ is clamped at rebuild so time / width_ cannot overflow.
    return static_cast<std::size_t>(time / width_) & mask_;
  }

  /// Sorted insert into the event's bucket. Appending at the tail is the
  /// O(1) fast path that keeps equal-timestamp floods (e.g. a million
  /// t=0 arrivals) linear: seq grows monotonically, so in-order pushes
  /// always append.
  void link(std::uint32_t slot) {
    Node& n = arena_[slot];
    const std::size_t b = bucket_of(n.time);
    n.bucket = static_cast<std::uint32_t>(b);
    const std::uint32_t tail = tail_[b];
    if (tail == kNull) {
      head_[b] = tail_[b] = slot;
      n.prev = n.next = kNull;
      return;
    }
    if (before(tail, slot)) {  // append
      n.prev = tail;
      n.next = kNull;
      arena_[tail].next = slot;
      tail_[b] = slot;
      return;
    }
    // Walk from the head for the first node ordered after the new one.
    std::uint32_t cur = head_[b];
    while (cur != kNull && before(cur, slot)) {
      cur = arena_[cur].next;
      ++stress_;
    }
    // cur != kNull here: the tail is ordered after `slot`.
    n.next = cur;
    n.prev = arena_[cur].prev;
    arena_[cur].prev = slot;
    if (n.prev != kNull) {
      arena_[n.prev].next = slot;
    } else {
      head_[b] = slot;
    }
  }

  void unlink(std::uint32_t slot) {
    Node& n = arena_[slot];
    const std::size_t b = n.bucket;
    if (n.prev != kNull) {
      arena_[n.prev].next = n.next;
    } else {
      head_[b] = n.next;
    }
    if (n.next != kNull) {
      arena_[n.next].prev = n.prev;
    } else {
      tail_[b] = n.prev;
    }
    n.prev = n.next = kNull;
    n.bucket = kNull;
  }

  /// Points the dequeue cursor (and cached minimum) at `slot`.
  void set_cursor(std::uint32_t slot) {
    min_ = slot;
    cursor_ = bucket_of(arena_[slot].time);
    cursor_top_ = (std::floor(arena_[slot].time / width_) + 1.0) * width_;
  }

  /// Re-locates the minimum after a pop/cancel. Fast path: scan one
  /// calendar year from the cursor — the first bucket whose head falls
  /// inside its current-year window holds the minimum (bucket lists are
  /// sorted, windows are visited in ascending time order, and equal
  /// times always share a bucket). Fallback: direct min over the bucket
  /// heads — unconditionally correct, O(bucket count).
  void find_min() {
    double top = cursor_top_;
    for (std::size_t i = 0; i <= mask_; ++i) {
      ++stress_;
      const std::size_t b = (cursor_ + i) & mask_;
      const std::uint32_t h = head_[b];
      if (h != kNull && arena_[h].time < top) {
        cursor_ = b;
        cursor_top_ = top;
        min_ = h;
        return;
      }
      top += width_;
    }
    std::uint32_t best = kNull;
    for (std::size_t b = 0; b <= mask_; ++b) {
      const std::uint32_t h = head_[b];
      if (h != kNull && (best == kNull || before(h, best))) best = h;
    }
    set_cursor(best);
  }

  void maybe_resize() {
    ++ops_;
    const std::size_t buckets = mask_ + 1;
    if (size_ > buckets * 2 && buckets < kMaxBuckets) {
      rebuild(buckets * 2);
    } else if (size_ < buckets / 4 && buckets > kMinBuckets) {
      rebuild(buckets / 2);
    } else if (stress_ > 8 * ops_ + 1024 && ops_ * 4 >= size_) {
      // Occupancy pathology at constant size: the event-time spread has
      // drifted away from the width the buckets were built for (e.g. the
      // hold pattern — a preload spanning a wide window collapses to a
      // dense moving front), so list walks / empty-bucket scans dominate.
      // Re-bucket at the same size to recompute the width from the
      // *current* spread. Purely a performance trigger: pop order is the
      // (time, seq) total order regardless of bucket geometry, so
      // determinism and golden figures are unaffected.
      rebuild(buckets);
    }
  }

  /// Re-buckets every live event into `buckets` buckets with a width
  /// matched to the current event-time spread. O(n log n) per call,
  /// amortised O(log n) per operation by the doubling schedule.
  void rebuild(std::size_t buckets) {
    scratch_.clear();
    for (std::size_t b = 0; b <= mask_ && scratch_.size() < size_; ++b) {
      for (std::uint32_t cur = head_[b]; cur != kNull;
           cur = arena_[cur].next) {
        scratch_.push_back(cur);
      }
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return before(a, b); });
    // Width ≈ 2× the mean inter-event gap of the interquartile bulk
    // (robust against a skewed spread: a dense moving front plus a long
    // sparse tail must size buckets for the bulk, not the range),
    // clamped so (a) a degenerate spread still yields a usable width and
    // (b) time / width_ cannot overflow the bucket index computation.
    const std::size_t n = scratch_.size();
    const double hi = n == 0 ? 0.0 : arena_[scratch_.back()].time;
    double width = 1.0;
    if (n >= 2) {
      const double lo = arena_[scratch_.front()].time;
      width = 2.0 * (hi - lo) / static_cast<double>(n);
      if (n >= 4) {
        const double q1 = arena_[scratch_[n / 4]].time;
        const double q3 = arena_[scratch_[(3 * n) / 4]].time;
        if (q3 > q1) width = 4.0 * (q3 - q1) / static_cast<double>(n);
      }
    }
    width = std::max({width, hi / 1e15, 1e-9});
    width_ = width;
    mask_ = buckets - 1;
    stress_ = 0;
    ops_ = 0;
    head_.assign(buckets, kNull);
    tail_.assign(buckets, kNull);
    for (const std::uint32_t s : scratch_) link(s);  // in-order: all appends
    if (!scratch_.empty()) {
      set_cursor(scratch_.front());
    } else {
      min_ = kNull;
      cursor_ = 0;
      cursor_top_ = width_;
    }
  }

  std::vector<Node> arena_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint32_t> scratch_;  // rebuild workspace (reused)
  std::uint32_t free_ = kNull;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  double width_ = 1.0;
  std::uint64_t stress_ = 0;  ///< list-walk + bucket-scan steps since rebuild
  std::uint64_t ops_ = 0;     ///< push/pop/cancel count since rebuild
  std::uint32_t min_ = kNull;    ///< cached minimum (valid iff size_ > 0)
  std::size_t cursor_ = 0;       ///< current calendar bucket
  double cursor_top_ = 1.0;      ///< upper time bound of cursor's window
};

}  // namespace gasched::sim
