#pragma once
// Open-loop arrival processes shared by the simulator and the serving
// runtime — one λ(t) implementation for both.
//
// A RateFunction describes an instantaneous arrival rate λ(t) in tasks
// per second (simulated seconds in workload::generate, wall-clock
// seconds in rt::Runtime::serve). An ArrivalSource turns one into a
// stream of arrival instants:
//
//  * constant rate — plain Poisson process, one exponential draw per
//    arrival. This path reproduces the pre-existing generator stream
//    bit-for-bit, so every all-constant-rate experiment keeps its bytes.
//  * bursty (two-state MMPP) — the legacy burstiness > 1 clumping model,
//    moved here verbatim from workload::generate.
//  * inhomogeneous λ(t) — Lewis–Shedler thinning against max_rate():
//    candidate arrivals at the constant majorant rate, accepted with
//    probability λ(t)/λ_max (the simulation recipe of the IPPP survey,
//    arXiv:1901.10754). Exact for any bounded rate function.
//
// Presets (diurnal / ramp / flash crowd) are constructed by name through
// make_rate_function; unknown names throw listing every valid preset,
// matching the registry conventions used for schedulers/distributions.

#include <memory>
#include <string>

#include "exp/params.hpp"
#include "util/rng.hpp"

namespace gasched::workload {

/// Instantaneous arrival rate λ(t) ≥ 0, bounded above by max_rate().
class RateFunction {
 public:
  virtual ~RateFunction() = default;
  /// λ(t) in arrivals per second; must satisfy 0 <= rate(t) <= max_rate().
  virtual double rate(double t) const = 0;
  /// Finite supremum of λ over t — the thinning majorant.
  virtual double max_rate() const = 0;
  /// Preset name ("constant", "diurnal", "ramp", "flash").
  virtual std::string name() const = 0;
};

/// λ(t) = λ — the homogeneous Poisson process.
class ConstantRate final : public RateFunction {
 public:
  /// Requires rate > 0.
  explicit ConstantRate(double rate_per_sec);
  double rate(double) const override { return rate_; }
  double max_rate() const override { return rate_; }
  std::string name() const override { return "constant"; }

 private:
  double rate_;
};

/// λ(t) = base (1 + a sin(2πt/period)) — a smooth diurnal cycle whose
/// mean rate over one period is exactly `base`.
class DiurnalRate final : public RateFunction {
 public:
  /// Requires base > 0, amplitude in [0, 1], period > 0.
  DiurnalRate(double base, double amplitude, double period);
  double rate(double t) const override;
  double max_rate() const override { return base_ * (1.0 + amplitude_); }
  std::string name() const override { return "diurnal"; }

 private:
  double base_, amplitude_, period_;
};

/// λ(t) ramps linearly from base·start_factor at t = 0 to base at
/// t = ramp_seconds, then stays at base — a warm-up / load-increase
/// profile.
class RampRate final : public RateFunction {
 public:
  /// Requires base > 0, start_factor in [0, 1], ramp_seconds > 0.
  RampRate(double base, double start_factor, double ramp_seconds);
  double rate(double t) const override;
  double max_rate() const override { return base_; }
  std::string name() const override { return "ramp"; }

 private:
  double base_, start_factor_, ramp_;
};

/// λ(t) = base, except ×multiplier inside spike windows of the given
/// width starting at `start` (repeating every `every` seconds when
/// every > 0; a single spike otherwise) — a flash crowd.
class FlashCrowdRate final : public RateFunction {
 public:
  /// Requires base > 0, multiplier >= 1, width > 0, every == 0 or
  /// every >= width.
  FlashCrowdRate(double base, double multiplier, double start, double width,
                 double every = 0.0);
  double rate(double t) const override;
  double max_rate() const override { return base_ * multiplier_; }
  std::string name() const override { return "flash"; }

 private:
  double base_, multiplier_, start_, width_, every_;
};

/// Comma-separated list of the valid preset names, for help text and
/// error messages.
const std::string& arrival_preset_names();

/// Builds a rate-function preset by name (case-insensitive) around the
/// given base rate (arrivals per second). Shape keys, all optional, are
/// read from `params` (the [workload] or [runtime] INI section):
///
///   diurnal  arrival_amplitude (0.8), arrival_period (600)
///   ramp     arrival_start_factor (0), arrival_ramp (300)
///   flash    arrival_flash_mult (10), arrival_flash_start (60),
///            arrival_flash_width (30), arrival_flash_every (0 = once)
///
/// Throws std::runtime_error listing every valid preset when `name` is
/// unknown.
std::unique_ptr<RateFunction> make_rate_function(const std::string& name,
                                                 double base_rate,
                                                 const exp::Params& params);

/// Stateful sampler of arrival instants. Construct through one of the
/// factories, then call next(rng) once per arrival; times are absolute
/// and non-decreasing from 0.
class ArrivalSource {
 public:
  /// Homogeneous Poisson process with the given mean inter-arrival time.
  /// One rng.exponential(mean) draw per arrival (the legacy stream).
  static ArrivalSource constant(double mean_interarrival);

  /// Two-state MMPP: ON-state inter-arrivals mean/burstiness, OFF-state
  /// mean×burstiness, exponential dwell of mean `burst_dwell` in each
  /// state. Draws the first state-switch instant from `rng` at
  /// construction (the legacy draw order). Requires burstiness >= 1.
  static ArrivalSource mmpp(double mean_interarrival, double burstiness,
                            double burst_dwell, util::Rng& rng);

  /// Inhomogeneous Poisson process with rate λ(t) via thinning. The rate
  /// function is borrowed — the caller keeps it alive for the source's
  /// lifetime.
  static ArrivalSource thinned(const RateFunction& fn);

  /// Absolute time of the next arrival (advances internal state). Never
  /// allocates.
  double next(util::Rng& rng);

  /// Time of the most recently returned arrival (0 before the first).
  double now() const noexcept { return t_; }

 private:
  enum class Kind { kConstant, kMmpp, kThinned };
  ArrivalSource() = default;

  Kind kind_ = Kind::kConstant;
  double t_ = 0.0;
  // constant + MMPP
  double mean_ia_ = 1.0;
  // MMPP
  double burstiness_ = 1.0;
  double dwell_ = 50.0;
  bool on_ = true;
  double switch_t_ = 0.0;
  // thinning
  const RateFunction* fn_ = nullptr;
};

}  // namespace gasched::workload
