#pragma once
// Workload generation (paper §4): task sizes are randomly generated using
// uniform, normal, and Poisson distributions; arrival processes cover the
// paper's all-at-start experiments and the dynamic (streaming) setting the
// scheduler is designed for.

#include <memory>
#include <string>

#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/task.hpp"

namespace gasched::workload {

/// Strategy interface for drawing one task size (MFLOPs).
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  /// Draws one task size. Implementations guarantee a strictly positive
  /// result (degenerate draws are clamped to `min_size()`).
  virtual double sample(util::Rng& rng) const = 0;
  /// Theoretical mean of the distribution (after clamping is ignored).
  virtual double mean() const = 0;
  /// Smallest size this distribution can emit.
  virtual double min_size() const = 0;
  /// Human-readable name ("uniform", "normal", "poisson", ...).
  virtual std::string name() const = 0;
};

/// Uniform task sizes in [lo, hi] MFLOPs (paper §4.4 uses 10–100,
/// 10–1000, and 10–10000).
class UniformSizes final : public SizeDistribution {
 public:
  /// Requires 0 < lo <= hi.
  UniformSizes(double lo, double hi);
  double sample(util::Rng& rng) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double min_size() const override { return lo_; }
  std::string name() const override { return "uniform"; }
  /// Lower bound of the range.
  double lo() const noexcept { return lo_; }
  /// Upper bound of the range.
  double hi() const noexcept { return hi_; }

 private:
  double lo_, hi_;
};

/// Normal task sizes, truncated below at `floor_mflops` so every task has
/// positive work (paper §4.3 uses mean 1000 MFLOPs, variance 9e5).
class NormalSizes final : public SizeDistribution {
 public:
  /// Requires mean > 0, variance >= 0, floor > 0.
  NormalSizes(double mean, double variance, double floor_mflops = 1.0);
  double sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  double min_size() const override { return floor_; }
  std::string name() const override { return "normal"; }
  /// Distribution variance (before truncation).
  double variance() const noexcept { return stddev_ * stddev_; }

 private:
  double mean_, stddev_, floor_;
};

/// Poisson-distributed task sizes with the given mean (paper §4.5 uses
/// means 10 and 100 MFLOPs). Zero draws are clamped to `floor_mflops`.
class PoissonSizes final : public SizeDistribution {
 public:
  /// Requires mean > 0, floor > 0.
  PoissonSizes(double mean, double floor_mflops = 1.0);
  double sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  double min_size() const override { return floor_; }
  std::string name() const override { return "poisson"; }

 private:
  double mean_, floor_;
};

/// Constant task sizes (useful for tests and homogeneous baselines).
class ConstantSizes final : public SizeDistribution {
 public:
  /// Requires size > 0.
  explicit ConstantSizes(double size);
  double sample(util::Rng& rng) const override;
  double mean() const override { return size_; }
  double min_size() const override { return size_; }
  std::string name() const override { return "constant"; }

 private:
  double size_;
};

/// Arrival process configuration.
///
/// Four regimes (all realised through workload::ArrivalSource, the λ(t)
/// implementation shared with the serving runtime):
///  * all_at_start (the paper's §4.2 setup) — every task arrives at t = 0;
///  * Poisson process — exponential inter-arrivals with the given mean;
///  * bursty (two-state MMPP) — when `burstiness` > 1, the process
///    alternates between an ON state (mean inter-arrival
///    mean_interarrival / burstiness) and an OFF state (mean
///    inter-arrival mean_interarrival × burstiness), with exponential
///    state dwell times of mean `burst_dwell`. This models the arrival
///    clumping real submission streams show, which the paper's dynamic
///    design (§3, "tasks ... arrive randomly") targets but its
///    experiments never exercise;
///  * inhomogeneous Poisson — when `rate_function` is set, arrivals
///    follow λ(t) via thinning (diurnal cycles, ramps, flash crowds; see
///    workload/arrival.hpp). Mutually exclusive with burstiness > 1.
struct ArrivalConfig {
  /// If true, every task arrives at t = 0 (the paper's experimental setup,
  /// §4.2: "All of the tasks arrived for scheduling at the beginning of
  /// the simulation").
  bool all_at_start = true;
  /// Mean inter-arrival time (exponential) when all_at_start is false.
  double mean_interarrival = 1.0;
  /// Burst intensity b >= 1: ON-state arrivals are b× faster, OFF-state
  /// b× slower than mean_interarrival. 1 = plain Poisson process.
  double burstiness = 1.0;
  /// Mean dwell time in each MMPP state (seconds), when burstiness > 1.
  double burst_dwell = 50.0;
  /// Inhomogeneous arrival rate λ(t); null = homogeneous process at
  /// 1/mean_interarrival (bit-identical to the pre-rate-function
  /// generator stream). Requires burstiness == 1 when set.
  std::shared_ptr<const RateFunction> rate_function;
};

/// Generates `count` tasks with sizes from `dist` and arrivals from
/// `arrivals`, ids dense in [0, count).
Workload generate(const SizeDistribution& dist, std::size_t count,
                  util::Rng& rng, const ArrivalConfig& arrivals = {});

/// Factory helpers mirroring the paper's three experiment families.
std::unique_ptr<SizeDistribution> make_normal_paper();    ///< μ=1000, σ²=9e5
std::unique_ptr<SizeDistribution> make_uniform_narrow();  ///< 10–100
std::unique_ptr<SizeDistribution> make_uniform_mid();     ///< 10–1000
std::unique_ptr<SizeDistribution> make_uniform_wide();    ///< 10–10000
std::unique_ptr<SizeDistribution> make_poisson_small();   ///< mean 10
std::unique_ptr<SizeDistribution> make_poisson_large();   ///< mean 100

}  // namespace gasched::workload
