#pragma once
// Additional task-size families for generality/robustness experiments
// beyond the paper's three (§4 motivates testing across distributions):
//
//  * BimodalSizes — mixture of two truncated normals ("small scripts +
//    big renders"), the classic grid-computing workload shape.
//  * ParetoSizes — bounded Pareto heavy tail, the adversarial case for
//    size-oblivious schedulers.
//  * LognormalSizes — the skewed-but-finite-variance shape batch traces
//    usually fit best; sits between normal and Pareto in tail weight.

#include "workload/generator.hpp"

namespace gasched::workload {

/// Mixture of two truncated normal modes.
class BimodalSizes final : public SizeDistribution {
 public:
  /// With probability `weight_small` draw from N(mean_small, var_small),
  /// else from N(mean_large, var_large); both truncated below at `floor`.
  /// Requires positive means/floor and weight in [0, 1].
  BimodalSizes(double mean_small, double var_small, double mean_large,
               double var_large, double weight_small = 0.8,
               double floor_mflops = 1.0);
  double sample(util::Rng& rng) const override;
  double mean() const override;
  double min_size() const override { return floor_; }
  std::string name() const override { return "bimodal"; }

 private:
  double mean_small_, sd_small_, mean_large_, sd_large_, weight_small_,
      floor_;
};

/// Bounded Pareto: density ∝ x^{−α−1} on [lo, hi].
class ParetoSizes final : public SizeDistribution {
 public:
  /// Requires 0 < lo < hi and alpha > 0 (alpha != 1 handled too).
  ParetoSizes(double alpha, double lo, double hi);
  double sample(util::Rng& rng) const override;
  double mean() const override;
  double min_size() const override { return lo_; }
  std::string name() const override { return "pareto"; }
  /// Tail exponent α.
  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_, lo_, hi_;
};

/// Log-normal task sizes: ln X ~ N(ln median, sigma²), clamped below at
/// `floor`. Parameterised by the size-space median (= e^μ) because that
/// is the number workload traces report; `sigma` is the log-space
/// standard deviation (sigma ≈ 1–2.5 covers most published batch
/// traces; sigma = 0 degenerates to constant sizes).
class LognormalSizes final : public SizeDistribution {
 public:
  /// Requires median > 0, sigma >= 0, floor > 0.
  LognormalSizes(double median, double sigma, double floor_mflops = 1.0);
  double sample(util::Rng& rng) const override;
  double mean() const override;
  double min_size() const override { return floor_; }
  std::string name() const override { return "lognormal"; }
  /// Size-space median e^μ.
  double median() const noexcept { return median_; }
  /// Log-space standard deviation σ.
  double sigma() const noexcept { return sigma_; }

 private:
  double median_, sigma_, floor_;
};

}  // namespace gasched::workload
