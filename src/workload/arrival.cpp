#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gasched::workload {

ConstantRate::ConstantRate(double rate_per_sec) : rate_(rate_per_sec) {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("ConstantRate: rate must be > 0");
  }
}

DiurnalRate::DiurnalRate(double base, double amplitude, double period)
    : base_(base), amplitude_(amplitude), period_(period) {
  if (!(base > 0.0) || amplitude < 0.0 || amplitude > 1.0 ||
      !(period > 0.0)) {
    throw std::invalid_argument(
        "DiurnalRate: need base > 0, amplitude in [0, 1], period > 0");
  }
}

double DiurnalRate::rate(double t) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return base_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
}

RampRate::RampRate(double base, double start_factor, double ramp_seconds)
    : base_(base), start_factor_(start_factor), ramp_(ramp_seconds) {
  if (!(base > 0.0) || start_factor < 0.0 || start_factor > 1.0 ||
      !(ramp_seconds > 0.0)) {
    throw std::invalid_argument(
        "RampRate: need base > 0, start_factor in [0, 1], ramp > 0");
  }
}

double RampRate::rate(double t) const {
  const double f = std::clamp(t / ramp_, 0.0, 1.0);
  return base_ * (start_factor_ + (1.0 - start_factor_) * f);
}

FlashCrowdRate::FlashCrowdRate(double base, double multiplier, double start,
                               double width, double every)
    : base_(base),
      multiplier_(multiplier),
      start_(start),
      width_(width),
      every_(every) {
  if (!(base > 0.0) || multiplier < 1.0 || start < 0.0 || !(width > 0.0) ||
      (every != 0.0 && every < width)) {
    throw std::invalid_argument(
        "FlashCrowdRate: need base > 0, multiplier >= 1, start >= 0, "
        "width > 0, every == 0 or every >= width");
  }
}

double FlashCrowdRate::rate(double t) const {
  double offset = t - start_;
  if (every_ > 0.0 && offset >= 0.0) offset = std::fmod(offset, every_);
  const bool in_spike = offset >= 0.0 && offset < width_;
  return in_spike ? base_ * multiplier_ : base_;
}

const std::string& arrival_preset_names() {
  static const std::string names = "constant, diurnal, flash, ramp";
  return names;
}

std::unique_ptr<RateFunction> make_rate_function(const std::string& name,
                                                 double base_rate,
                                                 const exp::Params& params) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key.empty() || key == "constant" || key == "poisson") {
    return std::make_unique<ConstantRate>(base_rate);
  }
  if (key == "diurnal") {
    return std::make_unique<DiurnalRate>(
        base_rate, params.get_double("arrival_amplitude", 0.8),
        params.get_double("arrival_period", 600.0));
  }
  if (key == "ramp") {
    return std::make_unique<RampRate>(
        base_rate, params.get_double("arrival_start_factor", 0.0),
        params.get_double("arrival_ramp", 300.0));
  }
  if (key == "flash") {
    return std::make_unique<FlashCrowdRate>(
        base_rate, params.get_double("arrival_flash_mult", 10.0),
        params.get_double("arrival_flash_start", 60.0),
        params.get_double("arrival_flash_width", 30.0),
        params.get_double("arrival_flash_every", 0.0));
  }
  throw std::runtime_error("unknown arrival preset '" + name +
                           "' (valid: " + arrival_preset_names() + ")");
}

ArrivalSource ArrivalSource::constant(double mean_interarrival) {
  if (!(mean_interarrival > 0.0)) {
    throw std::invalid_argument(
        "ArrivalSource: mean_interarrival must be > 0");
  }
  ArrivalSource s;
  s.kind_ = Kind::kConstant;
  s.mean_ia_ = mean_interarrival;
  return s;
}

ArrivalSource ArrivalSource::mmpp(double mean_interarrival, double burstiness,
                                  double burst_dwell, util::Rng& rng) {
  if (!(mean_interarrival > 0.0) || burstiness < 1.0 ||
      !(burst_dwell > 0.0)) {
    throw std::invalid_argument(
        "ArrivalSource: need mean_interarrival > 0, burstiness >= 1, "
        "burst_dwell > 0");
  }
  ArrivalSource s;
  s.kind_ = Kind::kMmpp;
  s.mean_ia_ = mean_interarrival;
  s.burstiness_ = burstiness;
  s.dwell_ = burst_dwell;
  s.on_ = true;
  // The first state-switch instant is drawn at construction, before any
  // arrival — the draw order the generator has always used.
  s.switch_t_ = rng.exponential(burst_dwell);
  return s;
}

ArrivalSource ArrivalSource::thinned(const RateFunction& fn) {
  if (!(fn.max_rate() > 0.0)) {
    throw std::invalid_argument("ArrivalSource: max_rate() must be > 0");
  }
  ArrivalSource s;
  s.kind_ = Kind::kThinned;
  s.fn_ = &fn;
  return s;
}

double ArrivalSource::next(util::Rng& rng) {
  switch (kind_) {
    case Kind::kConstant:
      t_ += rng.exponential(mean_ia_);
      return t_;
    case Kind::kMmpp:
      // Exponential inter-arrivals are memoryless, so discarding the
      // partial draw at a state switch and redrawing at the new rate is
      // exact.
      for (;;) {
        const double mean =
            on_ ? mean_ia_ / burstiness_ : mean_ia_ * burstiness_;
        const double ia = rng.exponential(mean);
        if (t_ + ia <= switch_t_) {
          t_ += ia;
          return t_;
        }
        t_ = switch_t_;
        on_ = !on_;
        switch_t_ = t_ + rng.exponential(dwell_);
      }
    case Kind::kThinned: {
      // Lewis–Shedler: candidates at the majorant rate λ_max, accepted
      // with probability λ(t)/λ_max.
      const double lam_max = fn_->max_rate();
      for (;;) {
        t_ += rng.exponential(1.0 / lam_max);
        if (rng.uniform01() * lam_max <= fn_->rate(t_)) return t_;
      }
    }
  }
  return t_;  // unreachable
}

}  // namespace gasched::workload
