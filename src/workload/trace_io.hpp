#pragma once
// Workload trace persistence: save/load task sets as CSV so experiments
// can be replayed and shared. The format is a header row
// `id,size_mflops,arrival_time` followed by one row per task.

#include <filesystem>

#include "workload/task.hpp"

namespace gasched::workload {

/// Writes `w` to `path` as CSV. Throws std::runtime_error on I/O failure.
void save_trace(const Workload& w, const std::filesystem::path& path);

/// Reads a workload trace written by `save_trace`. Throws
/// std::runtime_error on I/O failure or malformed content.
Workload load_trace(const std::filesystem::path& path);

}  // namespace gasched::workload
