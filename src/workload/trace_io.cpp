#include "workload/trace_io.hpp"

#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace gasched::workload {

void save_trace(const Workload& w, const std::filesystem::path& path) {
  util::CsvWriter out(path);
  out.row({"id", "size_mflops", "arrival_time"});
  for (const auto& t : w.tasks) {
    out.row({std::to_string(t.id), util::format_double(t.size_mflops),
             util::format_double(t.arrival_time)});
  }
}

Workload load_trace(const std::filesystem::path& path) {
  const auto rows = util::read_csv(path);
  if (rows.empty() || rows[0].size() < 3 || rows[0][0] != "id") {
    throw std::runtime_error("load_trace: missing header in " + path.string());
  }
  Workload w;
  w.tasks.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.size() < 3) {
      throw std::runtime_error("load_trace: short row in " + path.string());
    }
    Task t;
    try {
      t.id = static_cast<TaskId>(std::stol(r[0]));
      t.size_mflops = std::stod(r[1]);
      t.arrival_time = std::stod(r[2]);
    } catch (const std::exception&) {
      throw std::runtime_error("load_trace: bad numeric field in " +
                               path.string());
    }
    if (t.size_mflops <= 0.0) {
      throw std::runtime_error("load_trace: non-positive task size in " +
                               path.string());
    }
    w.tasks.push_back(t);
  }
  return w;
}

}  // namespace gasched::workload
