#pragma once
// Task model (paper §3): tasks are indivisible, independent of all other
// tasks, arrive randomly, and can be processed by any processor. A task's
// resource requirement is measured in MFLOPs (millions of floating point
// operations); a processor's execution rate in Mflop/s.

#include <cstdint>
#include <limits>
#include <vector>

namespace gasched::workload {

/// Unique task identifier.
using TaskId = std::int32_t;

/// Sentinel for "no task".
inline constexpr TaskId kInvalidTask = -1;

/// One schedulable unit of work.
struct Task {
  TaskId id = kInvalidTask;   ///< unique id, dense from 0 within a workload
  double size_mflops = 0.0;   ///< resource requirement in MFLOPs
  double arrival_time = 0.0;  ///< simulation time at which the task arrives

  friend bool operator==(const Task&, const Task&) = default;
};

/// An ordered collection of tasks (by arrival time, then id).
struct Workload {
  std::vector<Task> tasks;

  /// Total MFLOPs across all tasks.
  double total_mflops() const noexcept {
    double s = 0.0;
    for (const auto& t : tasks) s += t.size_mflops;
    return s;
  }

  /// Largest task size (0 for empty workloads).
  double max_mflops() const noexcept {
    double m = 0.0;
    for (const auto& t : tasks) m = m > t.size_mflops ? m : t.size_mflops;
    return m;
  }

  /// Smallest task size (+inf for empty workloads).
  double min_mflops() const noexcept {
    double m = std::numeric_limits<double>::infinity();
    for (const auto& t : tasks) m = m < t.size_mflops ? m : t.size_mflops;
    return m;
  }

  /// Number of tasks.
  std::size_t size() const noexcept { return tasks.size(); }
  /// True when no tasks are present.
  bool empty() const noexcept { return tasks.empty(); }
};

}  // namespace gasched::workload
