#pragma once
// Registry hookup for the built-in task-size families (generator.hpp and
// heavy_tail.hpp). Called once by exp::DistributionRegistry when the
// registry is first touched.

namespace gasched::exp {
class DistributionRegistry;
}

namespace gasched::workload {

/// Registers normal, uniform, poisson, constant, pareto, bimodal.
void register_builtin_distributions(exp::DistributionRegistry& registry);

}  // namespace gasched::workload
