#include "workload/register.hpp"

#include "exp/registry.hpp"
#include "workload/generator.hpp"
#include "workload/heavy_tail.hpp"

namespace gasched::workload {

void register_builtin_distributions(exp::DistributionRegistry& registry) {
  using exp::WorkloadSpec;

  registry.add({.name = "normal",
                .summary = "truncated normal sizes; keys: mean (param_a), "
                           "variance (param_b), floor (§4.3)",
                .rank = 0,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<NormalSizes>(
                          s.params.get_double("mean", s.param_a),
                          s.params.get_double("variance", s.param_b),
                          s.params.get_double("floor", 1.0));
                    }});
  registry.add({.name = "uniform",
                .summary = "uniform sizes; keys: lo (param_a), hi "
                           "(param_b) (§4.4)",
                .rank = 1,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<UniformSizes>(
                          s.params.get_double("lo", s.param_a),
                          s.params.get_double("hi", s.param_b));
                    }});
  registry.add({.name = "poisson",
                .summary = "Poisson sizes; keys: mean (param_a), floor "
                           "(§4.5)",
                .rank = 2,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<PoissonSizes>(
                          s.params.get_double("mean", s.param_a),
                          s.params.get_double("floor", 1.0));
                    }});
  registry.add({.name = "constant",
                .summary = "constant sizes; keys: size (param_a)",
                .rank = 3,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<ConstantSizes>(
                          s.params.get_double("size", s.param_a));
                    }});
  registry.add({.name = "pareto",
                .summary = "bounded Pareto heavy tail, density ∝ x^(−α−1); "
                           "keys: alpha (1.1), lo (param_a), hi (param_b)",
                .rank = 4,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<ParetoSizes>(
                          s.params.get_double("alpha", 1.1),
                          s.params.get_double("lo", s.param_a),
                          s.params.get_double("hi", s.param_b));
                    }});
  registry.add({.name = "lognormal",
                .summary = "log-normal sizes, ln X ~ N(ln median, sigma^2); "
                           "keys: median (param_a), sigma (1), floor (1)",
                .rank = 5,
                .factory =
                    [](const WorkloadSpec& s) {
                      return std::make_unique<LognormalSizes>(
                          s.params.get_double("median", s.param_a),
                          s.params.get_double("sigma", 1.0),
                          s.params.get_double("floor", 1.0));
                    }});
  registry.add(
      {.name = "bimodal",
       .summary = "two truncated normal modes (small scripts + big "
                  "renders); keys: mean_small (100), var_small (900), "
                  "mean_large (10000), var_large (9e6), weight_small "
                  "(0.8), floor (1)",
       .rank = 6,
       .factory =
           [](const WorkloadSpec& s) {
             return std::make_unique<BimodalSizes>(
                 s.params.get_double("mean_small", 100.0),
                 s.params.get_double("var_small", 900.0),
                 s.params.get_double("mean_large", 10000.0),
                 s.params.get_double("var_large", 9e6),
                 s.params.get_double("weight_small", 0.8),
                 s.params.get_double("floor", 1.0));
           }});
}

}  // namespace gasched::workload
