#include "workload/heavy_tail.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gasched::workload {

BimodalSizes::BimodalSizes(double mean_small, double var_small,
                           double mean_large, double var_large,
                           double weight_small, double floor_mflops)
    : mean_small_(mean_small),
      sd_small_(std::sqrt(var_small)),
      mean_large_(mean_large),
      sd_large_(std::sqrt(var_large)),
      weight_small_(weight_small),
      floor_(floor_mflops) {
  if (!(mean_small > 0.0) || !(mean_large > 0.0) || var_small < 0.0 ||
      var_large < 0.0 || weight_small < 0.0 || weight_small > 1.0 ||
      !(floor_mflops > 0.0)) {
    throw std::invalid_argument("BimodalSizes: invalid parameters");
  }
}

double BimodalSizes::sample(util::Rng& rng) const {
  if (rng.bernoulli(weight_small_)) {
    return rng.normal_truncated(mean_small_, sd_small_, floor_);
  }
  return rng.normal_truncated(mean_large_, sd_large_, floor_);
}

double BimodalSizes::mean() const {
  return weight_small_ * mean_small_ + (1.0 - weight_small_) * mean_large_;
}

ParetoSizes::ParetoSizes(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (!(alpha > 0.0) || !(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument(
        "ParetoSizes: need alpha > 0 and 0 < lo < hi");
  }
}

double ParetoSizes::sample(util::Rng& rng) const {
  // Inverse-CDF of the bounded Pareto.
  const double u = rng.uniform01();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x =
      std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return std::clamp(x, lo_, hi_);
}

LognormalSizes::LognormalSizes(double median, double sigma,
                               double floor_mflops)
    : median_(median), sigma_(sigma), floor_(floor_mflops) {
  if (!(median > 0.0) || sigma < 0.0 || !(floor_mflops > 0.0)) {
    throw std::invalid_argument(
        "LognormalSizes: need median > 0, sigma >= 0, floor > 0");
  }
}

double LognormalSizes::sample(util::Rng& rng) const {
  const double x = median_ * std::exp(sigma_ * rng.normal());
  return std::max(x, floor_);
}

double LognormalSizes::mean() const {
  return median_ * std::exp(0.5 * sigma_ * sigma_);
}

double ParetoSizes::mean() const {
  const double a = alpha_;
  if (std::abs(a - 1.0) < 1e-12) {
    // α = 1: mean = ln(hi/lo) · lo·hi / (hi − lo).
    return std::log(hi_ / lo_) * lo_ * hi_ / (hi_ - lo_);
  }
  const double la = std::pow(lo_, a);
  return la / (1.0 - std::pow(lo_ / hi_, a)) * a / (a - 1.0) *
         (1.0 / std::pow(lo_, a - 1.0) - 1.0 / std::pow(hi_, a - 1.0));
}

}  // namespace gasched::workload
