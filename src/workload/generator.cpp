#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gasched::workload {

UniformSizes::UniformSizes(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(lo > 0.0) || !(hi >= lo)) {
    throw std::invalid_argument("UniformSizes: need 0 < lo <= hi");
  }
}

double UniformSizes::sample(util::Rng& rng) const {
  return rng.uniform(lo_, hi_);
}

NormalSizes::NormalSizes(double mean, double variance, double floor_mflops)
    : mean_(mean), stddev_(std::sqrt(variance)), floor_(floor_mflops) {
  if (!(mean > 0.0) || variance < 0.0 || !(floor_mflops > 0.0)) {
    throw std::invalid_argument(
        "NormalSizes: need mean > 0, variance >= 0, floor > 0");
  }
}

double NormalSizes::sample(util::Rng& rng) const {
  return rng.normal_truncated(mean_, stddev_, floor_);
}

PoissonSizes::PoissonSizes(double mean, double floor_mflops)
    : mean_(mean), floor_(floor_mflops) {
  if (!(mean > 0.0) || !(floor_mflops > 0.0)) {
    throw std::invalid_argument("PoissonSizes: need mean > 0, floor > 0");
  }
}

double PoissonSizes::sample(util::Rng& rng) const {
  const double draw = static_cast<double>(rng.poisson(mean_));
  return std::max(draw, floor_);
}

ConstantSizes::ConstantSizes(double size) : size_(size) {
  if (!(size > 0.0)) throw std::invalid_argument("ConstantSizes: size > 0");
}

double ConstantSizes::sample(util::Rng&) const { return size_; }

Workload generate(const SizeDistribution& dist, std::size_t count,
                  util::Rng& rng, const ArrivalConfig& arrivals) {
  if (arrivals.burstiness < 1.0) {
    throw std::invalid_argument("ArrivalConfig: burstiness must be >= 1");
  }
  Workload w;
  w.tasks.reserve(count);
  double t = 0.0;
  // Two-state MMPP bookkeeping (unused when burstiness == 1). The
  // exponential inter-arrival is memoryless, so discarding the partial
  // draw at a state switch and redrawing at the new rate is exact.
  const bool bursty = !arrivals.all_at_start && arrivals.burstiness > 1.0;
  bool on = true;
  double switch_t =
      bursty ? rng.exponential(arrivals.burst_dwell)
             : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    Task task;
    task.id = static_cast<TaskId>(i);
    task.size_mflops = dist.sample(rng);
    if (!arrivals.all_at_start) {
      for (;;) {
        const double mean_ia =
            !bursty ? arrivals.mean_interarrival
                    : (on ? arrivals.mean_interarrival / arrivals.burstiness
                          : arrivals.mean_interarrival * arrivals.burstiness);
        const double ia = rng.exponential(mean_ia);
        if (t + ia <= switch_t) {
          t += ia;
          break;
        }
        t = switch_t;
        on = !on;
        switch_t = t + rng.exponential(arrivals.burst_dwell);
      }
      task.arrival_time = t;
    }
    w.tasks.push_back(task);
  }
  return w;
}

std::unique_ptr<SizeDistribution> make_normal_paper() {
  return std::make_unique<NormalSizes>(1000.0, 9e5);
}
std::unique_ptr<SizeDistribution> make_uniform_narrow() {
  return std::make_unique<UniformSizes>(10.0, 100.0);
}
std::unique_ptr<SizeDistribution> make_uniform_mid() {
  return std::make_unique<UniformSizes>(10.0, 1000.0);
}
std::unique_ptr<SizeDistribution> make_uniform_wide() {
  return std::make_unique<UniformSizes>(10.0, 10000.0);
}
std::unique_ptr<SizeDistribution> make_poisson_small() {
  return std::make_unique<PoissonSizes>(10.0);
}
std::unique_ptr<SizeDistribution> make_poisson_large() {
  return std::make_unique<PoissonSizes>(100.0);
}

}  // namespace gasched::workload
