#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gasched::workload {

UniformSizes::UniformSizes(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(lo > 0.0) || !(hi >= lo)) {
    throw std::invalid_argument("UniformSizes: need 0 < lo <= hi");
  }
}

double UniformSizes::sample(util::Rng& rng) const {
  return rng.uniform(lo_, hi_);
}

NormalSizes::NormalSizes(double mean, double variance, double floor_mflops)
    : mean_(mean), stddev_(std::sqrt(variance)), floor_(floor_mflops) {
  if (!(mean > 0.0) || variance < 0.0 || !(floor_mflops > 0.0)) {
    throw std::invalid_argument(
        "NormalSizes: need mean > 0, variance >= 0, floor > 0");
  }
}

double NormalSizes::sample(util::Rng& rng) const {
  return rng.normal_truncated(mean_, stddev_, floor_);
}

PoissonSizes::PoissonSizes(double mean, double floor_mflops)
    : mean_(mean), floor_(floor_mflops) {
  if (!(mean > 0.0) || !(floor_mflops > 0.0)) {
    throw std::invalid_argument("PoissonSizes: need mean > 0, floor > 0");
  }
}

double PoissonSizes::sample(util::Rng& rng) const {
  const double draw = static_cast<double>(rng.poisson(mean_));
  return std::max(draw, floor_);
}

ConstantSizes::ConstantSizes(double size) : size_(size) {
  if (!(size > 0.0)) throw std::invalid_argument("ConstantSizes: size > 0");
}

double ConstantSizes::sample(util::Rng&) const { return size_; }

Workload generate(const SizeDistribution& dist, std::size_t count,
                  util::Rng& rng, const ArrivalConfig& arrivals) {
  if (arrivals.burstiness < 1.0) {
    throw std::invalid_argument("ArrivalConfig: burstiness must be >= 1");
  }
  if (arrivals.rate_function && arrivals.burstiness > 1.0) {
    throw std::invalid_argument(
        "ArrivalConfig: rate_function and burstiness > 1 are mutually "
        "exclusive");
  }
  Workload w;
  w.tasks.reserve(count);
  // The arrival stream is delegated to the ArrivalSource shared with the
  // serving runtime. Construction order matters for stream stability: the
  // MMPP source draws its first state-switch instant here, before any
  // size sample — exactly the draw order the inline implementation used —
  // and the constant-rate source draws one exponential per arrival, so
  // pre-rate-function experiments keep their bytes.
  const bool streaming = !arrivals.all_at_start;
  ArrivalSource source =
      !streaming ? ArrivalSource::constant(1.0)
      : arrivals.rate_function
          ? ArrivalSource::thinned(*arrivals.rate_function)
      : arrivals.burstiness > 1.0
          ? ArrivalSource::mmpp(arrivals.mean_interarrival,
                                arrivals.burstiness, arrivals.burst_dwell,
                                rng)
          : ArrivalSource::constant(arrivals.mean_interarrival);
  for (std::size_t i = 0; i < count; ++i) {
    Task task;
    task.id = static_cast<TaskId>(i);
    task.size_mflops = dist.sample(rng);
    if (streaming) task.arrival_time = source.next(rng);
    w.tasks.push_back(task);
  }
  return w;
}

std::unique_ptr<SizeDistribution> make_normal_paper() {
  return std::make_unique<NormalSizes>(1000.0, 9e5);
}
std::unique_ptr<SizeDistribution> make_uniform_narrow() {
  return std::make_unique<UniformSizes>(10.0, 100.0);
}
std::unique_ptr<SizeDistribution> make_uniform_mid() {
  return std::make_unique<UniformSizes>(10.0, 1000.0);
}
std::unique_ptr<SizeDistribution> make_uniform_wide() {
  return std::make_unique<UniformSizes>(10.0, 10000.0);
}
std::unique_ptr<SizeDistribution> make_poisson_small() {
  return std::make_unique<PoissonSizes>(10.0);
}
std::unique_ptr<SizeDistribution> make_poisson_large() {
  return std::make_unique<PoissonSizes>(100.0);
}

}  // namespace gasched::workload
