#pragma once
/// \file
/// The fractional makespan-assignment relaxation of a
/// metrics::BoundInstance, and the *certified* lower bound extracted
/// from its dual.
///
/// Primal LP (variables x_tj = fraction of task t on processor j,
/// slack s_j, makespan T; a_tj = t/P_j + c_j, δ_j = L_j/P_j):
///
///     minimize    T
///     subject to  Σ_j x_tj = 1                       (∀ task t)
///                 δ_j + Σ_t a_tj·x_tj + s_j = T      (∀ processor j)
///                 x, s, T ≥ 0
///
/// Any feasible schedule's makespan is feasible here (set x_tj ∈ {0,1}
/// by its assignment), so the LP optimum is a valid lower bound — but a
/// solver's primal value is *not* trustworthy: it is only approximately
/// optimal and approximately feasible. The certificate below is. For
/// any multipliers λ ≥ 0 with Σλ > 0, summing the machine constraints
/// weighted by λ and bounding Σ_j λ_j·a_tj·x_tj from below by
/// min_j(λ_j·a_tj) (since Σ_j x_tj = 1, x ≥ 0) gives **weak duality by
/// direct arithmetic**:
///
///     T ≥ ( Σ_t min_j(λ_j·a_tj) + Σ_j λ_j·δ_j ) / Σ_j λ_j
///
/// valid for EVERY feasible schedule, whatever λ the solver returned and
/// however early it stopped. certified_bound_from_duals() evaluates this
/// expression in plain double arithmetic and subtracts a safe rounding
/// margin proportional to the number of floating-point operations, so
/// the returned value is a true lower bound of the exact optimum.
/// (λ_j ∝ P_j recovers the classic work bound; the solver's converged
/// duals dominate it, which is what makes the reported gaps tighter.)

#include <cstddef>
#include <vector>

#include "metrics/bounds.hpp"

namespace gasched::opt {

struct RelaxationOptions {
  double tolerance = 1e-8;      ///< IP-PMM relative tolerance
  std::size_t max_iterations = 60;
};

struct RelaxationResult {
  /// Certified lower bound on the instance's optimal makespan (≥ 0),
  /// from the dual certificate — valid even when !converged.
  double certified_bound = 0.0;
  /// The solver's primal objective (T at the final iterate). Close to
  /// the LP optimum when converged; NOT a valid bound by itself.
  double relaxation_objective = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
  /// The multipliers λ_j ≥ 0 the certificate was evaluated at (clamped
  /// machine-row duals). Re-evaluating certified_bound_from_duals on
  /// these reproduces certified_bound exactly.
  std::vector<double> machine_duals;
};

/// Formulates and solves the relaxation of `inst` with the IP-PMM
/// solver, then extracts the certified dual bound. Deterministic:
/// identical instances yield bit-identical results. Throws
/// std::invalid_argument on malformed instances (same validation as
/// metrics::makespan_lower_bound).
RelaxationResult solve_makespan_relaxation(const metrics::BoundInstance& inst,
                                           const RelaxationOptions& options = {});

/// Evaluates the weak-duality certificate at arbitrary multipliers
/// `lambda` (size M; negatives are clamped to 0). Plain double
/// arithmetic plus a rounding margin — the result is a valid makespan
/// lower bound for ANY lambda. Returns 0 when Σλ is not safely positive.
double certified_bound_from_duals(const metrics::BoundInstance& inst,
                                  const std::vector<double>& lambda);

}  // namespace gasched::opt
