#include "opt/relaxation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "opt/ippm.hpp"

namespace gasched::opt {

namespace {

void rel_validate(const metrics::BoundInstance& inst) {
  if (inst.rates.empty()) {
    throw std::invalid_argument("BoundInstance: no processors");
  }
  for (const double r : inst.rates) {
    if (!(r > 0.0)) {
      throw std::invalid_argument("BoundInstance: rates must be positive");
    }
  }
  if (!inst.pending_mflops.empty() &&
      inst.pending_mflops.size() != inst.rates.size()) {
    throw std::invalid_argument("BoundInstance: pending size mismatch");
  }
  if (!inst.comm_costs.empty() &&
      inst.comm_costs.size() != inst.rates.size()) {
    throw std::invalid_argument("BoundInstance: comm size mismatch");
  }
}

double rel_pending(const metrics::BoundInstance& inst, std::size_t j) {
  return inst.pending_mflops.empty() ? 0.0 : inst.pending_mflops[j];
}

double rel_comm(const metrics::BoundInstance& inst, std::size_t j) {
  return inst.comm_costs.empty() ? 0.0 : inst.comm_costs[j];
}

double rel_cost(const metrics::BoundInstance& inst, std::size_t t, std::size_t j) {
  return inst.task_sizes[t] / inst.rates[j] + rel_comm(inst, j);
}

double rel_delta(const metrics::BoundInstance& inst, std::size_t j) {
  return rel_pending(inst, j) / inst.rates[j];
}

}  // namespace

double certified_bound_from_duals(const metrics::BoundInstance& inst,
                                  const std::vector<double>& lambda) {
  rel_validate(inst);
  const std::size_t m = inst.rates.size();
  const std::size_t n = inst.task_sizes.size();
  if (lambda.size() != m) {
    throw std::invalid_argument(
        "certified_bound_from_duals: lambda size mismatch");
  }
  double weight = 0.0;
  for (const double l : lambda) {
    if (!std::isfinite(l)) return 0.0;
    weight += std::max(l, 0.0);
  }
  if (!(weight > 0.0) || !std::isfinite(weight)) return 0.0;

  // Numerator: every term is nonnegative, so the relative rounding error
  // of the whole expression is bounded by the operation count times the
  // unit roundoff — subtract that margin to stay a true bound.
  double numerator = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    double cheapest = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      cheapest = std::min(cheapest, std::max(lambda[j], 0.0) * rel_cost(inst, t, j));
    }
    numerator += cheapest;
  }
  for (std::size_t j = 0; j < m; ++j) {
    numerator += std::max(lambda[j], 0.0) * rel_delta(inst, j);
  }
  const double bound = numerator / weight;
  if (!std::isfinite(bound)) return 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  const double margin =
      bound * eps * 8.0 * static_cast<double>(n + m + 8);
  return std::max(0.0, bound - margin);
}

RelaxationResult solve_makespan_relaxation(const metrics::BoundInstance& inst,
                                           const RelaxationOptions& options) {
  rel_validate(inst);
  const std::size_t num_tasks = inst.task_sizes.size();
  const std::size_t num_procs = inst.rates.size();

  RelaxationResult result;
  result.machine_duals.assign(num_procs, 0.0);
  if (num_tasks == 0) {
    // No assignment freedom: T* = max_j δ_j, certified by the unit
    // multiplier on the most-loaded processor.
    std::size_t worst = 0;
    for (std::size_t j = 1; j < num_procs; ++j) {
      if (rel_delta(inst, j) > rel_delta(inst, worst)) worst = j;
    }
    result.machine_duals[worst] = 1.0;
    result.certified_bound = certified_bound_from_duals(inst, result.machine_duals);
    result.relaxation_objective = rel_delta(inst, worst);
    result.converged = true;
    return result;
  }

  // Variable layout: x_tj at t·M + j, s_j at N·M + j, T last. Task rows
  // first — they are pairwise column-disjoint (each x column hits
  // exactly one), which is the solver's Schur fast path.
  QpProblem lp;
  lp.num_vars = num_tasks * num_procs + num_procs + 1;
  lp.num_cons = num_tasks + num_procs;
  lp.schur_diag_rows = num_tasks;
  lp.linear.assign(lp.num_vars, 0.0);
  lp.linear.back() = 1.0;
  lp.rhs.assign(lp.num_cons, 0.0);
  lp.constraints.reserve(2 * num_tasks * num_procs + 2 * num_procs);
  const std::size_t t_col = lp.num_vars - 1;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    lp.rhs[t] = 1.0;
    for (std::size_t j = 0; j < num_procs; ++j) {
      lp.constraints.push_back({t, t * num_procs + j, 1.0});
      lp.constraints.push_back(
          {num_tasks + j, t * num_procs + j, rel_cost(inst, t, j)});
    }
  }
  for (std::size_t j = 0; j < num_procs; ++j) {
    lp.rhs[num_tasks + j] = -rel_delta(inst, j);
    lp.constraints.push_back({num_tasks + j, num_tasks * num_procs + j, 1.0});
    lp.constraints.push_back({num_tasks + j, t_col, -1.0});
  }

  IppmOptions solver_options;
  solver_options.tolerance = options.tolerance;
  solver_options.max_iterations = options.max_iterations;
  const IppmSolution solution = solve_qp(lp, solver_options);

  // Machine row j is written as Σ_t a_tj·x_tj + s_j − T = −δ_j, so the
  // slack's reduced cost z_s = −y ≥ 0 makes λ_j = −y_{N+j} the
  // multiplier of the ≤-form constraint. Clamp: the certificate is
  // valid for any λ ≥ 0, so clamping loses nothing and guards against
  // an unconverged dual.
  for (std::size_t j = 0; j < num_procs; ++j) {
    const double dual = -solution.y[num_tasks + j];
    result.machine_duals[j] =
        std::isfinite(dual) ? std::max(dual, 0.0) : 0.0;
  }
  result.certified_bound = certified_bound_from_duals(inst, result.machine_duals);
  result.relaxation_objective = solution.x[t_col];
  result.converged = solution.converged();
  result.iterations = solution.iterations;
  return result;
}

}  // namespace gasched::opt
