#include "opt/ippm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gasched::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

/// Compressed-sparse-column view of A (duplicate entries summed into
/// separate slots; that is fine — every consumer accumulates).
struct Csc {
  std::vector<std::size_t> col_ptr;  // n + 1
  std::vector<std::size_t> rows;
  std::vector<double> vals;

  static Csc build(const QpProblem& p) {
    Csc a;
    a.col_ptr.assign(p.num_vars + 1, 0);
    for (const auto& e : p.constraints) ++a.col_ptr[e.col + 1];
    for (std::size_t c = 0; c < p.num_vars; ++c) {
      a.col_ptr[c + 1] += a.col_ptr[c];
    }
    a.rows.resize(p.constraints.size());
    a.vals.resize(p.constraints.size());
    std::vector<std::size_t> fill(a.col_ptr.begin(), a.col_ptr.end() - 1);
    for (const auto& e : p.constraints) {
      const std::size_t at = fill[e.col]++;
      a.rows[at] = e.row;
      a.vals[at] = e.value;
    }
    return a;
  }

  /// out += A * v (out size m, v size n).
  void add_mul(const std::vector<double>& v, std::vector<double>& out) const {
    const std::size_t n = col_ptr.size() - 1;
    for (std::size_t c = 0; c < n; ++c) {
      const double vc = v[c];
      if (vc == 0.0) continue;
      for (std::size_t k = col_ptr[c]; k < col_ptr[c + 1]; ++k) {
        out[rows[k]] += vals[k] * vc;
      }
    }
  }

  /// out += Aᵀ * v (out size n, v size m).
  void add_mul_t(const std::vector<double>& v, std::vector<double>& out) const {
    const std::size_t n = col_ptr.size() - 1;
    for (std::size_t c = 0; c < n; ++c) {
      double s = 0.0;
      for (std::size_t k = col_ptr[c]; k < col_ptr[c + 1]; ++k) {
        s += vals[k] * v[rows[k]];
      }
      out[c] += s;
    }
  }
};

/// In-place dense Cholesky (lower triangle of a row-major d×d matrix).
/// Returns false when a pivot is not safely positive.
bool cholesky(std::vector<double>& a, std::size_t d) {
  for (std::size_t j = 0; j < d; ++j) {
    double diag = a[j * d + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * d + k] * a[j * d + k];
    if (!(diag > 1e-300)) return false;
    const double root = std::sqrt(diag);
    a[j * d + j] = root;
    for (std::size_t i = j + 1; i < d; ++i) {
      double s = a[i * d + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * d + k] * a[j * d + k];
      a[i * d + j] = s / root;
    }
  }
  return true;
}

/// Solves L·Lᵀ·x = b in place for a Cholesky factor from cholesky().
void cholesky_solve(const std::vector<double>& l, std::size_t d,
                    std::vector<double>& b) {
  for (std::size_t i = 0; i < d; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * d + k] * b[k];
    b[i] = s / l[i * d + i];
  }
  for (std::size_t i = d; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < d; ++k) s -= l[k * d + i] * b[k];
    b[i] = s / l[i * d + i];
  }
}

/// One factorization of the regularized Newton normal equations for a
/// fixed diagonal Θ⁻¹ = Z/X: solves
///     D·Δx − Aᵀ·Δy = f,   A·Δx + δ·Δy = r_p,
/// where D = Q + Θ⁻¹ + ρI. Holds either the LP/Schur data (diagonal D)
/// or the dense-Q data; reused for the predictor and corrector solves.
struct KktFactor {
  const QpProblem* p = nullptr;
  const Csc* a = nullptr;
  std::size_t n = 0, m = 0, k = 0;  // k = schur-diagonal row count
  double delta = 0.0;
  bool lp = true;

  // LP path: D diagonal.
  std::vector<double> dinv;  // n
  std::vector<double> e;     // k (diagonal block of the normal matrix)
  std::vector<double> b;     // k × tail, row-major
  std::vector<double> s;     // tail × tail Cholesky factor

  // Dense-Q path.
  std::vector<double> dchol;  // n × n Cholesky of D
  std::vector<double> w;      // n × m, D⁻¹Aᵀ
  std::vector<double> mchol;  // m × m Cholesky of A·D⁻¹·Aᵀ + δI

  std::size_t tail() const { return m - k; }

  /// Builds the factorization; false when a Cholesky pivot fails (the
  /// caller bumps the regularization and retries).
  bool build(const QpProblem& problem, const Csc& csc,
             const std::vector<double>& theta_inv, double rho, double delta_in) {
    p = &problem;
    a = &csc;
    n = problem.num_vars;
    m = problem.num_cons;
    lp = problem.hessian.empty();
    k = lp ? problem.schur_diag_rows : 0;
    delta = delta_in;
    return lp ? build_lp(theta_inv, rho) : build_dense(theta_inv, rho);
  }

  bool build_lp(const std::vector<double>& theta_inv, double rho) {
    dinv.resize(n);
    for (std::size_t i = 0; i < n; ++i) dinv[i] = 1.0 / (theta_inv[i] + rho);
    const std::size_t t = tail();
    e.assign(k, delta);
    b.assign(k * t, 0.0);
    s.assign(t * t, 0.0);
    for (std::size_t i = 0; i < t; ++i) s[i * t + i] = delta;
    // A·D⁻¹·Aᵀ by column outer products: entries (r1,v1),(r2,v2) of
    // column c contribute v1·v2·dinv[c] to cell (r1,r2).
    for (std::size_t c = 0; c < n; ++c) {
      const double dc = dinv[c];
      for (std::size_t ka = a->col_ptr[c]; ka < a->col_ptr[c + 1]; ++ka) {
        const std::size_t ra = a->rows[ka];
        const double va = a->vals[ka] * dc;
        for (std::size_t kb = ka; kb < a->col_ptr[c + 1]; ++kb) {
          const std::size_t rb = a->rows[kb];
          const double prod = va * a->vals[kb];
          if (ra < k && rb < k) {
            // Column-disjointness of the leading rows (validated) means
            // both entries sit on the same row: a diagonal contribution.
            e[ra] += prod;
          } else if (ra < k) {
            b[ra * t + (rb - k)] += prod;
          } else if (rb < k) {
            b[rb * t + (ra - k)] += prod;
          } else if (ra == rb) {
            s[(ra - k) * t + (ra - k)] += prod;
          } else {
            s[(ra - k) * t + (rb - k)] += prod;
            s[(rb - k) * t + (ra - k)] += prod;
          }
        }
      }
    }
    // Schur complement of the diagonal block: S −= Bᵀ·E⁻¹·B.
    for (std::size_t i = 0; i < k; ++i) {
      const double ei = 1.0 / e[i];
      const double* bi = &b[i * t];
      for (std::size_t r = 0; r < t; ++r) {
        const double scale = bi[r] * ei;
        if (scale == 0.0) continue;
        double* srow = &s[r * t];
        for (std::size_t q = 0; q < t; ++q) srow[q] -= scale * bi[q];
      }
    }
    return t == 0 || cholesky(s, t);
  }

  bool build_dense(const std::vector<double>& theta_inv, double rho) {
    dchol.assign(p->hessian.begin(), p->hessian.end());
    for (std::size_t i = 0; i < n; ++i) {
      dchol[i * n + i] += theta_inv[i] + rho;
    }
    if (!cholesky(dchol, n)) return false;
    if (m == 0) return true;
    // W = D⁻¹Aᵀ, one triangular solve per constraint row.
    w.assign(n * m, 0.0);
    std::vector<double> col(n);
    for (std::size_t r = 0; r < m; ++r) {
      std::fill(col.begin(), col.end(), 0.0);
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t ka = a->col_ptr[c]; ka < a->col_ptr[c + 1]; ++ka) {
          if (a->rows[ka] == r) col[c] += a->vals[ka];
        }
      }
      cholesky_solve(dchol, n, col);
      for (std::size_t c = 0; c < n; ++c) w[c * m + r] = col[c];
    }
    mchol.assign(m * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) mchol[i * m + i] = delta;
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t ka = a->col_ptr[c]; ka < a->col_ptr[c + 1]; ++ka) {
        const std::size_t r = a->rows[ka];
        const double v = a->vals[ka];
        for (std::size_t q = 0; q < m; ++q) mchol[r * m + q] += v * w[c * m + q];
      }
    }
    return cholesky(mchol, m);
  }

  /// Applies D⁻¹ to `v` in place.
  void apply_dinv(std::vector<double>& v) const {
    if (lp) {
      for (std::size_t i = 0; i < n; ++i) v[i] *= dinv[i];
    } else {
      cholesky_solve(dchol, n, v);
    }
  }

  /// Solves the normal equations (A·D⁻¹·Aᵀ + δI)·Δy = g in place.
  void solve_normal(std::vector<double>& g) const {
    if (!lp) {
      cholesky_solve(mchol, m, g);
      return;
    }
    const std::size_t t = tail();
    // Block solve: [E B; Bᵀ C]·[Δy1; Δy2] = [g1; g2] with E diagonal.
    std::vector<double> g2(t);
    for (std::size_t r = 0; r < t; ++r) g2[r] = g[k + r];
    for (std::size_t i = 0; i < k; ++i) {
      const double gi = g[i] / e[i];
      const double* bi = &b[i * t];
      for (std::size_t r = 0; r < t; ++r) g2[r] -= bi[r] * gi;
    }
    if (t > 0) cholesky_solve(s, t, g2);
    for (std::size_t i = 0; i < k; ++i) {
      double gi = g[i];
      const double* bi = &b[i * t];
      for (std::size_t r = 0; r < t; ++r) gi -= bi[r] * g2[r];
      g[i] = gi / e[i];
    }
    for (std::size_t r = 0; r < t; ++r) g[k + r] = g2[r];
  }

  /// Solves the full KKT step for right-hand sides f (size n) and
  /// r_p (size m); writes Δx and Δy.
  void solve(const std::vector<double>& f, const std::vector<double>& rp,
             std::vector<double>& dx, std::vector<double>& dy) const {
    dx = f;
    apply_dinv(dx);
    dy.assign(m, 0.0);
    if (m > 0) {
      for (std::size_t r = 0; r < m; ++r) dy[r] = rp[r];
      std::vector<double> adf(m, 0.0);
      a->add_mul(dx, adf);
      for (std::size_t r = 0; r < m; ++r) dy[r] -= adf[r];
      solve_normal(dy);
      dx = f;
      a->add_mul_t(dy, dx);
      apply_dinv(dx);
    }
  }
};

void qp_validate(const QpProblem& p) {
  if (p.num_vars == 0) {
    throw std::invalid_argument("solve_qp: problem has no variables");
  }
  if (p.linear.size() != p.num_vars) {
    throw std::invalid_argument("solve_qp: linear term size mismatch");
  }
  if (p.rhs.size() != p.num_cons) {
    throw std::invalid_argument("solve_qp: rhs size mismatch");
  }
  if (!p.hessian.empty() && p.hessian.size() != p.num_vars * p.num_vars) {
    throw std::invalid_argument("solve_qp: hessian must be empty or n*n");
  }
  for (const double v : p.linear) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("solve_qp: non-finite linear term");
    }
  }
  for (const double v : p.rhs) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("solve_qp: non-finite rhs");
    }
  }
  for (const double v : p.hessian) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("solve_qp: non-finite hessian entry");
    }
  }
  for (const auto& e : p.constraints) {
    if (e.row >= p.num_cons || e.col >= p.num_vars) {
      throw std::invalid_argument("solve_qp: constraint entry out of range");
    }
    if (!std::isfinite(e.value)) {
      throw std::invalid_argument("solve_qp: non-finite constraint entry");
    }
  }
  if (p.schur_diag_rows > p.num_cons) {
    throw std::invalid_argument("solve_qp: schur_diag_rows > num_cons");
  }
  if (p.schur_diag_rows > 0 && p.hessian.empty()) {
    // The Schur fast path needs the leading rows pairwise
    // column-disjoint: no column may hit two of them.
    std::vector<std::size_t> hits(p.num_vars, 0);
    for (const auto& e : p.constraints) {
      if (e.row < p.schur_diag_rows && ++hits[e.col] > 1) {
        throw std::invalid_argument(
            "solve_qp: schur_diag_rows prefix is not column-disjoint");
      }
    }
  }
}

/// Mehrotra-style starting point: least-squares-flavoured x̃, ỹ from one
/// well-conditioned factorization (Θ⁻¹ = I), shifted into the positive
/// orthant. Falls back to a data-scaled box when the heuristic produces
/// unusable values.
void starting_point(const QpProblem& p, const Csc& a, std::vector<double>& x,
                    std::vector<double>& y, std::vector<double>& z) {
  const std::size_t n = p.num_vars;
  const std::size_t m = p.num_cons;
  x.assign(n, 1.0);
  y.assign(m, 0.0);
  z.assign(n, 1.0);
  const double bscale = std::max(1.0, inf_norm(p.rhs));
  const double cscale = std::max(1.0, inf_norm(p.linear));
  auto fallback = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = bscale;
      z[i] = std::max(1.0, std::abs(p.linear[i]));
    }
    std::fill(y.begin(), y.end(), 0.0);
  };
  if (m == 0) {
    fallback();
    return;
  }

  KktFactor f;
  std::vector<double> ones(n, 1.0);
  if (!f.build(p, a, ones, 1e-8, 1e-8)) {
    fallback();
    return;
  }
  const std::vector<double> zero_n(n, 0.0);
  const std::vector<double> zero_m(m, 0.0);
  std::vector<double> xt, yt, dx2, yneg;
  f.solve(zero_n, p.rhs, xt, yt);       // x̃ ≈ Aᵀ(AAᵀ)⁻¹b
  f.solve(p.linear, zero_m, dx2, yneg);  // ỹ = −yneg
  for (std::size_t r = 0; r < m; ++r) y[r] = -yneg[r];

  // z̃ = c + Qx̃ − Aᵀỹ.
  std::vector<double> zt = p.linear;
  if (!p.hessian.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += p.hessian[i * n + j] * xt[j];
      zt[i] += s;
    }
  }
  std::vector<double> aty(n, 0.0);
  a.add_mul_t(y, aty);
  for (std::size_t i = 0; i < n; ++i) zt[i] -= aty[i];

  double min_x = kInf, min_z = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    min_x = std::min(min_x, xt[i]);
    min_z = std::min(min_z, zt[i]);
  }
  const double shift_x = std::max(0.0, -1.5 * min_x);
  const double shift_z = std::max(0.0, -1.5 * min_z);
  double dot = 0.0, sum_x = 0.0, sum_z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += (xt[i] + shift_x) * (zt[i] + shift_z);
    sum_x += xt[i] + shift_x;
    sum_z += zt[i] + shift_z;
  }
  const double pad_x = sum_z > 0.0 ? 0.5 * dot / sum_z : 1.0;
  const double pad_z = sum_x > 0.0 ? 0.5 * dot / sum_x : 1.0;
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = xt[i] + shift_x + std::max(pad_x, 1e-2);
    z[i] = zt[i] + shift_z + std::max(pad_z, 1e-2 * cscale);
    if (!std::isfinite(x[i]) || !std::isfinite(z[i]) || x[i] <= 0.0 ||
        z[i] <= 0.0 || x[i] > 1e12 * bscale || z[i] > 1e12 * cscale) {
      ok = false;
      break;
    }
  }
  for (const double v : y) {
    if (!std::isfinite(v)) ok = false;
  }
  if (!ok) fallback();
}

/// Largest α ∈ [0, 1] with v + α·d ≥ (1 − τ)·v componentwise.
double step_length(const std::vector<double>& v, const std::vector<double>& d,
                   double tau) {
  double alpha = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (d[i] < 0.0) alpha = std::min(alpha, -tau * v[i] / d[i]);
  }
  return alpha;
}

}  // namespace

IppmSolution solve_qp(const QpProblem& problem, const IppmOptions& options) {
  qp_validate(problem);
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.num_cons;
  const Csc a = Csc::build(problem);

  IppmSolution out;
  starting_point(problem, a, out.x, out.y, out.z);
  std::vector<double>& x = out.x;
  std::vector<double>& y = out.y;
  std::vector<double>& z = out.z;

  const double bscale = 1.0 + inf_norm(problem.rhs);
  const double cscale = 1.0 + inf_norm(problem.linear);

  std::vector<double> rp(m), rd(n), qx(n, 0.0), theta_inv(n), aty(n);
  std::vector<double> f(n), rc(n), dxa, dya, dza(n), dx, dy, dz(n);
  KktFactor factor;

  double best_feas = kInf;
  std::size_t stall = 0;
  out.status = IppmStatus::kIterationLimit;

  for (std::size_t iter = 0; iter <= options.max_iterations; ++iter) {
    // Residuals at the current iterate.
    std::fill(qx.begin(), qx.end(), 0.0);
    if (!problem.hessian.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          s += problem.hessian[i * n + j] * x[j];
        }
        qx[i] = s;
      }
    }
    for (std::size_t r = 0; r < m; ++r) rp[r] = problem.rhs[r];
    {
      std::vector<double> ax(m, 0.0);
      a.add_mul(x, ax);
      for (std::size_t r = 0; r < m; ++r) rp[r] -= ax[r];
    }
    for (std::size_t i = 0; i < n; ++i) rd[i] = problem.linear[i] + qx[i] - z[i];
    std::fill(aty.begin(), aty.end(), 0.0);
    a.add_mul_t(y, aty);
    for (std::size_t i = 0; i < n; ++i) rd[i] -= aty[i];

    double obj = 0.0, mu = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      obj += problem.linear[i] * x[i] + 0.5 * qx[i] * x[i];
      mu += x[i] * z[i];
    }
    mu /= static_cast<double>(n);

    out.objective = obj;
    out.iterations = iter;
    out.primal_residual = inf_norm(rp) / bscale;
    out.dual_residual = inf_norm(rd) / cscale;
    out.complementarity = mu / (1.0 + std::abs(obj));

    if (out.primal_residual <= options.tolerance &&
        out.dual_residual <= options.tolerance &&
        out.complementarity <= options.tolerance) {
      out.status = IppmStatus::kConverged;
      return out;
    }

    // Divergence and stall detection (the infeasibility heuristic: an
    // infeasible problem drives complementarity down while the residuals
    // cannot improve, or blows the iterates up).
    const double feas = std::max(out.primal_residual, out.dual_residual);
    if (!std::isfinite(feas) || !std::isfinite(mu) || inf_norm(x) > 1e14 ||
        inf_norm(y) > 1e14) {
      out.status = IppmStatus::kInfeasible;
      return out;
    }
    if (feas < 0.9 * best_feas) {
      best_feas = feas;
      stall = 0;
    } else if (++stall >= 15 && feas > std::sqrt(options.tolerance)) {
      out.status = IppmStatus::kInfeasible;
      return out;
    }
    if (iter == options.max_iterations) break;

    // Proximal penalties fade with μ; the centers sit at the current
    // iterate, so they only thicken the Newton diagonal.
    double reg = std::max(options.regularization, std::min(1e-6, mu));
    for (std::size_t i = 0; i < n; ++i) theta_inv[i] = z[i] / x[i];
    bool factored = false;
    for (int attempt = 0; attempt < 4 && !factored; ++attempt) {
      factored = factor.build(problem, a, theta_inv, reg, reg);
      if (!factored) reg *= 100.0;
    }
    if (!factored) {
      out.status = IppmStatus::kInfeasible;
      return out;
    }

    // Predictor (affine scaling): complementarity rhs −XZe.
    for (std::size_t i = 0; i < n; ++i) f[i] = -rd[i] - z[i];
    factor.solve(f, rp, dxa, dya);
    for (std::size_t i = 0; i < n; ++i) {
      dza[i] = (-x[i] * z[i] - z[i] * dxa[i]) / x[i];
    }
    const double ap_aff = step_length(x, dxa, 1.0);
    const double ad_aff = step_length(z, dza, 1.0);
    double mu_aff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mu_aff += (x[i] + ap_aff * dxa[i]) * (z[i] + ad_aff * dza[i]);
    }
    mu_aff /= static_cast<double>(n);
    const double ratio = std::clamp(mu_aff / mu, 0.0, 1.0);
    const double sigma = ratio * ratio * ratio;

    // Corrector: −XZe − ΔXₐΔZₐe + σμe.
    for (std::size_t i = 0; i < n; ++i) {
      rc[i] = -x[i] * z[i] - dxa[i] * dza[i] + sigma * mu;
      f[i] = -rd[i] + rc[i] / x[i];
    }
    factor.solve(f, rp, dx, dy);
    for (std::size_t i = 0; i < n; ++i) {
      dz[i] = (rc[i] - z[i] * dx[i]) / x[i];
    }

    const double tau = 0.995;
    const double ap = std::min(1.0, tau * step_length(x, dx, 1.0));
    const double ad = std::min(1.0, tau * step_length(z, dz, 1.0));
    if (ap < 1e-12 && ad < 1e-12) {
      // No movement possible: treat like a stalled iteration so the
      // heuristic above terminates instead of spinning.
      ++stall;
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::max(x[i] + ap * dx[i], 1e-300);
      z[i] = std::max(z[i] + ad * dz[i], 1e-300);
    }
    for (std::size_t r = 0; r < m; ++r) y[r] += ad * dy[r];
  }
  return out;
}

}  // namespace gasched::opt
