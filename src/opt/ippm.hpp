#pragma once
/// \file
/// A dense, dependency-free interior-point solver for convex quadratic
/// programs in standard form,
///
///     minimize    ½ xᵀQx + cᵀx
///     subject to  Ax = b,  x ≥ 0,
///
/// following the IP-PMM recipe of Pougkakiotis & Gondzio
/// (arXiv:1904.10369): a Mehrotra-style predictor–corrector
/// interior-point method wrapped in a proximal method of multipliers.
/// The proximal terms appear as primal/dual regularization (ρ‖x − ξ‖² and
/// δ‖y − λ‖² with the proximal centers ξ, λ pinned at the current
/// iterate), which keeps the normal-equations matrix A·D⁻¹·Aᵀ + δI
/// positive definite even when A is rank deficient or Q is zero (pure
/// LP) — no factorization pivoting, no constraint preprocessing.
///
/// The Newton systems are solved by Cholesky on the normal equations.
/// Two shapes are supported:
///
///  * a generic dense path (Q dense or m small) — factor
///    D = Q + Θ⁻¹ + ρI, then the m×m matrix A·D⁻¹·Aᵀ + δI;
///  * a Schur fast path for LPs whose leading `schur_diag_rows`
///    constraint rows are pairwise column-disjoint: those rows
///    contribute a *diagonal* block to the normal matrix, so only the
///    trailing (m − k)×(m − k) complement is factored. The makespan
///    relaxation (opt/relaxation.hpp) has N task rows of this shape and
///    M + 1 ≪ N tail rows, turning an O(m³) factorization into O(N·M)
///    per iteration.
///
/// The solver is fully deterministic: no randomness, no
/// thread-count-dependent reductions — repeated solves of the same
/// problem are bit-identical.

#include <cstddef>
#include <vector>

namespace gasched::opt {

/// One nonzero of the constraint matrix A (duplicates are summed).
struct SparseEntry {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// A convex QP in standard form. `hessian` is dense row-major
/// num_vars×num_vars and may be empty (= zero Hessian, a pure LP);
/// `constraints` holds A sparsely.
struct QpProblem {
  std::size_t num_vars = 0;
  std::size_t num_cons = 0;
  std::vector<double> hessian;        ///< Q, dense row-major; empty = LP
  std::vector<double> linear;         ///< c, size num_vars
  std::vector<SparseEntry> constraints;  ///< A
  std::vector<double> rhs;            ///< b, size num_cons
  /// The leading `schur_diag_rows` rows of A are pairwise
  /// column-disjoint (validated; throws when they are not). 0 disables
  /// the Schur fast path. Only consulted on the LP path (empty hessian).
  std::size_t schur_diag_rows = 0;
};

enum class IppmStatus {
  kConverged,       ///< all relative residuals below tolerance
  kIterationLimit,  ///< ran out of iterations while still progressing
  kInfeasible,      ///< residuals stalled far from feasibility
};

struct IppmOptions {
  /// Relative tolerance on primal/dual infeasibility and
  /// complementarity.
  double tolerance = 1e-8;
  std::size_t max_iterations = 100;
  /// Floor for the proximal penalties ρ (primal) and δ (dual); the
  /// working value is max(floor, min(1e-6, μ)) so regularization fades
  /// as the barrier parameter μ does.
  double regularization = 1e-10;
};

/// Solver output. x/y/z are the primal iterate, equality duals, and
/// reduced costs; they are returned whatever the status, so callers can
/// extract safe dual certificates from early-terminated runs (see
/// opt/relaxation.hpp).
struct IppmSolution {
  IppmStatus status = IppmStatus::kIterationLimit;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  double objective = 0.0;      ///< cᵀx + ½xᵀQx at the final iterate
  std::size_t iterations = 0;
  double primal_residual = 0.0;   ///< ‖b − Ax‖∞ / (1 + ‖b‖∞)
  double dual_residual = 0.0;     ///< ‖c + Qx − Aᵀy − z‖∞ / (1 + ‖c‖∞)
  double complementarity = 0.0;   ///< xᵀz/n / (1 + |objective|)

  bool converged() const { return status == IppmStatus::kConverged; }
};

/// Solves `problem`. Throws std::invalid_argument on malformed input
/// (zero variables, size mismatches, out-of-range entries, non-finite
/// data, or a schur_diag_rows prefix that is not column-disjoint).
IppmSolution solve_qp(const QpProblem& problem, const IppmOptions& options = {});

}  // namespace gasched::opt
