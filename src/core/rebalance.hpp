#pragma once
// Re-balancing heuristic (paper §3.5).
//
// For an individual: select the most heavily loaded processor (largest
// estimated finish time). Then, with at most `probes` random searches,
// pick a task at random from another processor; if it is smaller than a
// randomly chosen task in the heavy processor's queue, swap the two. The
// mutated schedule is kept only if it is fitter.

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "util/rng.hpp"

namespace gasched::core {

/// Applies one re-balancing pass to `c` in place, decoding into the
/// workspace's flat schedule (allocation-free once warmed up). Returns
/// true when a fitter schedule was found and kept. `probes` bounds the
/// random searches for a smaller task (paper: 5).
bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes, EvalWorkspace& ws);

/// Convenience overload with a throwaway workspace.
bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes = 5);

}  // namespace gasched::core
