#include "core/register.hpp"

#include "core/genetic_scheduler.hpp"
#include "exp/registry.hpp"

namespace gasched::core {

namespace {

/// GA knobs shared by ZO, PN and PNI.
void apply_ga_params(GeneticSchedulerConfig& cfg,
                     const exp::SchedulerParams& p) {
  cfg.ga.max_generations =
      p.get_size("max_generations", exp::kDefaultMaxGenerations);
  cfg.ga.population = p.get_size("population", exp::kDefaultPopulation);
}

/// The paper's PN configuration (also the base of PNI).
GeneticSchedulerConfig pn_config(const exp::SchedulerParams& p) {
  GeneticSchedulerConfig cfg;
  apply_ga_params(cfg, p);
  const std::size_t rebalances =
      p.get_size("rebalances", exp::kDefaultRebalances);
  cfg.ga.improvement_passes = rebalances;
  cfg.rebalance = rebalances > 0;
  cfg.rebalance_probes =
      p.get_size("rebalance_probes", exp::kDefaultRebalanceProbes);
  cfg.dynamic_batch =
      p.get_bool("pn_dynamic_batch", exp::kDefaultPnDynamicBatch);
  const std::size_t batch = p.get_size("batch_size", exp::kDefaultBatchSize);
  cfg.fixed_batch = batch;
  cfg.max_batch = batch;  // cap dynamic H at the batch size
  return cfg;
}

}  // namespace

void register_builtin_schedulers(exp::SchedulerRegistry& registry) {
  using exp::SchedulerParams;
  const unsigned paper = exp::kSchedulerTagPaper;
  const unsigned meta = exp::kSchedulerTagMetaheuristic;

  registry.add({.name = "ZO",
                .summary = "Zomaya & Teh genetic baseline: fixed batch, no "
                           "comm prediction, no re-balance (§4.1)",
                .tags = paper | meta,
                .rank = 3,
                .factory =
                    [](const SchedulerParams& p) {
                      auto zo = make_zo_scheduler(
                          p.get_size("batch_size", exp::kDefaultBatchSize));
                      GeneticSchedulerConfig cfg = zo->config();
                      apply_ga_params(cfg, p);
                      return std::make_unique<GeneticBatchScheduler>(cfg,
                                                                     "ZO");
                    }});
  registry.add({.name = "PN",
                .summary = "the paper's GA: comm prediction, re-balance "
                           "heuristic, dynamic batch sizing (§3)",
                .tags = paper | meta,
                .rank = 4,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_pn_scheduler(pn_config(p));
                    }});
  registry.add({.name = "PNI",
                .summary = "PN evolved with an island-model parallel GA: "
                           "islands × population with ring migration",
                .tags = meta,
                .rank = 16,
                .factory =
                    [](const SchedulerParams& p) {
                      GeneticSchedulerConfig cfg = pn_config(p);
                      cfg.migration_interval = p.get_size(
                          "migration_interval", exp::kDefaultMigrationInterval);
                      // Replications already saturate the thread pool; keep
                      // islands sequential inside each run so nested
                      // parallelism cannot oversubscribe.
                      cfg.island_parallel = false;
                      return make_pn_island_scheduler(
                          p.get_size("islands", exp::kDefaultIslands), cfg);
                    }});
}

}  // namespace gasched::core
