#pragma once
// Initial population (paper §3.3): "The initial population is generated
// using a list scheduling heuristic. A percentage of tasks are randomly
// assigned to processors with the remaining tasks being assigned to the
// processors that will finish processing them the earliest. This leads to
// a well balanced randomised initial population."

#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "util/rng.hpp"

namespace gasched::core {

/// Builds one randomised list schedule into `out` (buffers reused): each
/// batch slot is assigned randomly with probability `random_fraction`,
/// otherwise to the processor that would finish it earliest given
/// assignments so far (earliest-finish includes the evaluator's comm
/// estimates when enabled). Queue order is the (shuffled) visit order.
void list_schedule_flat(const ScheduleEvaluator& eval, double random_fraction,
                        util::Rng& rng, FlatSchedule& out);

/// Legacy adapter: the same schedule (same RNG stream, same queue
/// contents and order) materialised as per-processor queues.
ProcQueues list_schedule(const ScheduleEvaluator& eval, double random_fraction,
                         util::Rng& rng);

/// Builds `count` independent list schedules encoded as chromosomes.
std::vector<ga::Chromosome> initial_population(const ScheduleCodec& codec,
                                               const ScheduleEvaluator& eval,
                                               std::size_t count,
                                               double random_fraction,
                                               util::Rng& rng);

}  // namespace gasched::core
