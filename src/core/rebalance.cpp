#include "core/rebalance.hpp"

#include <algorithm>

namespace gasched::core {

bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes) {
  const ProcQueues queues = codec.decode(c);
  const std::size_t M = queues.size();
  if (M < 2) return false;

  // Most heavily loaded processor = largest estimated finish time.
  std::size_t heavy = 0;
  double heavy_time = -1.0;
  for (std::size_t j = 0; j < M; ++j) {
    const double t = eval.completion_time(j, queues[j]);
    if (t > heavy_time) {
      heavy_time = t;
      heavy = j;
    }
  }
  if (queues[heavy].empty()) return false;

  const double base_fitness = eval.fitness(queues);

  // Up to `probes` random searches for a smaller task on another processor.
  for (std::size_t probe = 0; probe < probes; ++probe) {
    const std::size_t other = rng.index(M);
    if (other == heavy || queues[other].empty()) continue;
    const std::size_t oi = rng.index(queues[other].size());
    const std::size_t hi = rng.index(queues[heavy].size());
    const std::size_t small_slot = queues[other][oi];
    const std::size_t big_slot = queues[heavy][hi];
    if (!(eval.task_size(small_slot) < eval.task_size(big_slot))) continue;

    // Candidate: swap the two tasks between queues.
    ProcQueues cand = queues;
    cand[other][oi] = big_slot;
    cand[heavy][hi] = small_slot;
    if (eval.fitness(cand) > base_fitness) {
      // Apply the swap directly on the chromosome: exchange the two genes.
      const ga::Gene g_small = ScheduleCodec::task_gene(small_slot);
      const ga::Gene g_big = ScheduleCodec::task_gene(big_slot);
      for (auto& g : c) {
        if (g == g_small) {
          g = g_big;
        } else if (g == g_big) {
          g = g_small;
        }
      }
      return true;
    }
    return false;  // found a smaller task but the swap was not fitter
  }
  return false;
}

}  // namespace gasched::core
