#include "core/rebalance.hpp"

#include <algorithm>
#include <utility>

namespace gasched::core {

bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes, EvalWorkspace& ws) {
  FlatSchedule& s = ws.schedule;
  codec.decode_into(c, s);
  const std::size_t M = s.num_procs();
  if (M < 2) return false;

  // Most heavily loaded processor = largest estimated finish time.
  std::size_t heavy = 0;
  double heavy_time = -1.0;
  for (std::size_t j = 0; j < M; ++j) {
    const double t = eval.completion_time(j, s.queue(j));
    if (t > heavy_time) {
      heavy_time = t;
      heavy = j;
    }
  }
  if (s.queue(heavy).empty()) return false;

  const double base_fitness = eval.fitness(s);

  // Up to `probes` random searches for a smaller task on another processor.
  for (std::size_t probe = 0; probe < probes; ++probe) {
    const std::size_t other = rng.index(M);
    if (other == heavy || s.queue(other).empty()) continue;
    const auto other_q = s.queue(other);
    const auto heavy_q = s.queue(heavy);
    const std::size_t oi = rng.index(other_q.size());
    const std::size_t hi = rng.index(heavy_q.size());
    const std::size_t small_slot = other_q[oi];
    const std::size_t big_slot = heavy_q[hi];
    if (!(eval.task_size(small_slot) < eval.task_size(big_slot))) continue;

    // Candidate: swap the two tasks between queues, in place.
    std::swap(other_q[oi], heavy_q[hi]);
    const bool fitter = eval.fitness(s) > base_fitness;
    std::swap(other_q[oi], heavy_q[hi]);  // restore the decode
    if (fitter) {
      // Apply the swap directly on the chromosome: exchange the two genes.
      const ga::Gene g_small = ScheduleCodec::task_gene(small_slot);
      const ga::Gene g_big = ScheduleCodec::task_gene(big_slot);
      for (auto& g : c) {
        if (g == g_small) {
          g = g_big;
        } else if (g == g_big) {
          g = g_small;
        }
      }
      return true;
    }
    return false;  // found a smaller task but the swap was not fitter
  }
  return false;
}

bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes) {
  EvalWorkspace ws;
  return rebalance_once(c, codec, eval, rng, probes, ws);
}

}  // namespace gasched::core
