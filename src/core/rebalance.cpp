#include "core/rebalance.hpp"

#include <algorithm>
#include <utility>

namespace gasched::core {

namespace {

/// Publishes the evaluation of the chromosome as this pass leaves it, so
/// the engine can skip its evaluation sweep (see GaProblem::Workspace).
void supply_evaluation(EvalWorkspace& ws, const BatchEvaluation& e) {
  ws.improve_evaluation = {e.fitness, e.makespan};
  ws.has_improve_evaluation = true;
}

}  // namespace

bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes, EvalWorkspace& ws) {
  FlatSchedule& s = ws.schedule;
  // Fused decode + full pricing: one pass fills both the flat schedule
  // and the per-queue load cache (heaviest processor, base fitness).
  const BatchEvaluation base = eval.load_decoded(codec, c, s, ws.loads);
  const std::size_t M = s.num_procs();
  if (M < 2) return false;

  // Most heavily loaded processor = largest estimated finish time.
  const std::size_t heavy = ws.loads.heaviest;
  if (s.queue(heavy).empty()) {
    supply_evaluation(ws, base);
    return false;
  }

  // Up to `probes` random searches for a smaller task on another processor.
  for (std::size_t probe = 0; probe < probes; ++probe) {
    const std::size_t other = rng.index(M);
    if (other == heavy || s.queue(other).empty()) continue;
    const auto other_q = s.queue(other);
    const auto heavy_q = s.queue(heavy);
    const std::size_t oi = rng.index(other_q.size());
    const std::size_t hi = rng.index(heavy_q.size());
    const std::size_t small_slot = other_q[oi];
    const std::size_t big_slot = heavy_q[hi];
    if (!(eval.task_size(small_slot) < eval.task_size(big_slot))) continue;

    // Candidate: swap the two tasks between queues, in place, and
    // delta-price only the two changed queues against the cached loads.
    std::swap(other_q[oi], heavy_q[hi]);
    const BatchEvaluation cand = eval.evaluate_swap(s, ws.loads, other, heavy);
    if (cand.fitness > base.fitness) {
      // Apply the swap directly on the chromosome: exchange the two genes.
      const ga::Gene g_small = ScheduleCodec::task_gene(small_slot);
      const ga::Gene g_big = ScheduleCodec::task_gene(big_slot);
      for (auto& g : c) {
        if (g == g_small) {
          g = g_big;
        } else if (g == g_big) {
          g = g_small;
        }
      }
      // The swapped flat schedule is exactly the decode of the swapped
      // chromosome, so `cand` is its full-pricing evaluation.
      supply_evaluation(ws, cand);
      return true;
    }
    // Found a smaller task but the swap was not fitter: the chromosome is
    // unchanged, so its evaluation is the base pricing. (The workspace
    // schedule/loads are scratch and re-filled on the next decode.)
    supply_evaluation(ws, base);
    return false;
  }
  supply_evaluation(ws, base);
  return false;
}

bool rebalance_once(ga::Chromosome& c, const ScheduleCodec& codec,
                    const ScheduleEvaluator& eval, util::Rng& rng,
                    std::size_t probes) {
  EvalWorkspace ws;
  return rebalance_once(c, codec, eval, rng, probes, ws);
}

}  // namespace gasched::core
