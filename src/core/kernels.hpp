#pragma once
// Runtime-dispatched SIMD kernels behind the kFast pricing path
// (core/numeric.hpp; docs/evaluation.md "Numeric modes").
//
// Three primitives cover every fast-path consumer:
//
//   sum_gather        Σ values[idx[k]]   — queue pricing over a cost pane
//   sum_range         Σ values[k]        — contiguous sums
//   reduce_deviation  (Σ(ψ−c_j)², max c_j, first argmax) over a
//                     completion lane — the metrics reduction
//
// Each exists in an AVX2 variant (x86-64, selected when the CPU reports
// AVX2+FMA), a NEON variant (aarch64 baseline), and an unrolled-scalar
// fallback. Selection happens once per process (active_isa()); the
// GASCHED_KERNEL_ISA environment variable (scalar|avx2|neon) overrides
// it for tests, and requesting an unsupported ISA throws at first use.
//
// Determinism contract: every kernel is a pure function of its inputs
// with a fixed association per ISA — no thread-count or chunking
// dependence — so fast-mode results are reproducible per (machine, env)
// even though they differ from the exact path in the last ulps. The
// AVX2 variants carry their own `target("avx2,fma")` attributes, so no
// global -mavx2 flag is needed and the exact path's code generation is
// untouched.

#include <cstddef>

namespace gasched::core::kernels {

enum class Isa { kScalar, kAvx2, kNeon };

/// "scalar" / "avx2" / "neon".
const char* isa_name(Isa isa) noexcept;

/// Compile-time and runtime capability report (perf_kernels --report,
/// ledger machine stanza).
struct CpuFeatures {
  bool compiled_avx2 = false;  ///< this binary carries an AVX2 code path
  bool compiled_neon = false;  ///< this binary carries a NEON code path
  bool runtime_avx2 = false;   ///< CPU reports AVX2 and FMA
  bool runtime_neon = false;   ///< aarch64 baseline
  bool native_build = false;   ///< built with GASCHED_NATIVE
};
CpuFeatures cpu_features() noexcept;

/// True when `isa` can execute on this build + CPU.
bool supported(Isa isa) noexcept;

/// ISA the dispatched kernels below use: best supported, unless
/// GASCHED_KERNEL_ISA overrides. Cached at first use; throws
/// std::runtime_error on an unsupported or unknown override.
Isa active_isa();

/// Σ_k values[idx[k]] (n indices). The fast queue-pricing primitive:
/// `values` is a per-processor cost pane, `idx` a queue's slot list.
double sum_gather(const double* values, const std::size_t* idx,
                  std::size_t n);

/// Hoistable form of sum_gather: the active ISA's function pointer, so a
/// caller pricing many short queues (the batched population path — H/M
/// can be ~4 slots per queue) resolves the dispatch once per block
/// instead of once per queue. Same function the dispatched wrapper
/// calls; identical bits.
using SumGatherFn = double (*)(const double*, const std::size_t*,
                               std::size_t);
SumGatherFn sum_gather_fn();

/// Σ_k values[k] over a contiguous range.
double sum_range(const double* values, std::size_t n);

/// Metrics reduction over one completion lane.
struct Reduction {
  double sum_sq = 0.0;     ///< Σ_j (ψ − completion[j])²
  double max = 0.0;        ///< max_j completion[j] (0 when m == 0)
  std::size_t argmax = 0;  ///< first j attaining max
};
Reduction reduce_deviation(const double* completion, std::size_t m,
                           double psi);

// Per-ISA entry points (tests compare variants; the dispatched functions
// above route to active_isa()). Calling an unsupported ISA is undefined
// behaviour — check supported() first.
double sum_gather_isa(Isa isa, const double* values, const std::size_t* idx,
                      std::size_t n);
double sum_range_isa(Isa isa, const double* values, std::size_t n);
Reduction reduce_deviation_isa(Isa isa, const double* completion,
                               std::size_t m, double psi);

}  // namespace gasched::core::kernels
