#pragma once
// Registry hookup for the genetic batch schedulers (ZO, PN, and the
// island-model PNI). Called once by exp::SchedulerRegistry when the
// registry is first touched.

namespace gasched::exp {
class SchedulerRegistry;
}

namespace gasched::core {

/// Registers ZO, PN, PNI.
void register_builtin_schedulers(exp::SchedulerRegistry& registry);

}  // namespace gasched::core
