#pragma once
// The paper's batch genetic scheduler (PN), and the ZO baseline it extends
// (Zomaya & Teh 2001, converted to heterogeneous processors per §4.1).
//
// Both are sim::SchedulingPolicy implementations driven by the same GA
// machinery; they differ in exactly the ways the paper describes:
//
//                         PN (this paper)        ZO (baseline)
//   comm-cost prediction  yes (smoothed Γc_j)    no
//   re-balance heuristic  1 pass/individual/gen  none
//   batch size            dynamic ⌊√(Γs+1)⌋      fixed
//
// Operators (shared): roulette-wheel selection, cycle crossover, random
// swap mutation, list-scheduling initial population, elitism, stop at
// 1000 generations or when the target makespan is reached.

#include <memory>
#include <string>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/policy.hpp"
#include "util/smoothing.hpp"

namespace gasched::core {

/// Configuration for GeneticBatchScheduler.
struct GeneticSchedulerConfig {
  /// GA parameters (population 20, ≤1000 generations by default).
  ga::GaConfig ga;
  /// Fraction of tasks placed randomly (vs earliest-finish) when building
  /// the initial population.
  double random_init_fraction = 0.5;
  /// Use smoothed per-link communication estimates in the fitness function
  /// (true = PN, false = ZO).
  bool use_comm_estimates = true;
  /// Apply the re-balancing heuristic (`ga.improvement_passes` per
  /// individual per generation). PN: true; ZO: false.
  bool rebalance = true;
  /// Random-search probes per re-balance (paper: 5).
  std::size_t rebalance_probes = 5;
  /// Dynamic batch sizing H = ⌊√(Γs + 1)⌋ (§3.7). When false,
  /// `fixed_batch` tasks are taken per invocation.
  bool dynamic_batch = true;
  /// Batch size when dynamic_batch is false (paper Fig 5 uses 200).
  std::size_t fixed_batch = 200;
  /// Smoothing factor ν for the idle-time sequence s_p (§3.7).
  double batch_nu = 0.5;
  /// Wall-clock budget per invocation (seconds); 0 disables. This is the
  /// practical form of §3.4's third stopping condition ("the GA will also
  /// stop evolving if one of the processors becomes idle") — pair it with
  /// EngineConfig::sched_time_scale so scheduling time costs simulated
  /// time and processors really can go idle waiting for a schedule.
  double max_wall_seconds = 0.0;
  /// Dynamic batch bounds. min_batch 0 means "at least one task per
  /// processor" (max(M, 1)); max_batch caps GA cost (Θ(H²) per §3.7).
  std::size_t min_batch = 0;
  std::size_t max_batch = 1000;
  /// Evolve with an island-model parallel GA (ga/island.hpp) when > 1:
  /// `islands` sub-populations of `ga.population` individuals with ring
  /// migration. 1 = the paper's single-population micro GA.
  std::size_t islands = 1;
  /// Generations between migrations (island mode only).
  std::size_t migration_interval = 25;
  /// Individuals exchanged per migration (island mode only).
  std::size_t migrants = 2;
  /// Run islands on the shared thread pool (results are identical either
  /// way; this only affects wall time).
  bool island_parallel = true;
};

/// PN/ZO batch scheduler: consumes a batch from the unscheduled queue and
/// evolves a schedule for it with a GA.
class GeneticBatchScheduler final : public sim::SchedulingPolicy {
 public:
  /// `display_name` is used in reports ("PN", "ZO", ...).
  GeneticBatchScheduler(GeneticSchedulerConfig cfg, std::string display_name);

  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override;

  std::string name() const override { return name_; }

  /// Batch size the scheduler would use right now for `view` (visible for
  /// tests and the batch-size ablation).
  std::size_t next_batch_size(const sim::SystemView& view);

  /// Configuration (read-only).
  const GeneticSchedulerConfig& config() const noexcept { return cfg_; }

 private:
  GeneticSchedulerConfig cfg_;
  std::string name_;
  util::Smoother idle_smoother_;  // Γ over the s_p sequence
  EvalWorkspace decode_scratch_;  // reused final-decode buffers
};

/// Factory: the paper's scheduler with default parameters.
std::unique_ptr<GeneticBatchScheduler> make_pn_scheduler(
    GeneticSchedulerConfig cfg = {});

/// Factory: the ZO baseline (no comm prediction, no re-balance, fixed
/// batch of `fixed_batch`).
std::unique_ptr<GeneticBatchScheduler> make_zo_scheduler(
    std::size_t fixed_batch = 200);

/// Factory: PN evolved with an island-model parallel GA ("PNI") —
/// `islands` micro-populations with ring migration (see ga/island.hpp).
std::unique_ptr<GeneticBatchScheduler> make_pn_island_scheduler(
    std::size_t islands = 4, GeneticSchedulerConfig cfg = {});

}  // namespace gasched::core
