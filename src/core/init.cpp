#include "core/init.hpp"

#include <numeric>

namespace gasched::core {

namespace {

/// Per-thread scratch for the list scheduler (finish times, visit order,
/// slot → processor map) so repeated starts are allocation-free.
struct ListScheduleScratch {
  std::vector<double> finish;
  std::vector<std::size_t> order;
  std::vector<std::size_t> slot_proc;
};

ListScheduleScratch& ls_scratch() {
  thread_local ListScheduleScratch s;
  return s;
}

}  // namespace

void list_schedule_flat(const ScheduleEvaluator& eval, double random_fraction,
                        util::Rng& rng, FlatSchedule& out) {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  auto& sc = ls_scratch();
  // Finish-time accumulator per processor, starting from existing load.
  sc.finish.resize(M);
  for (std::size_t j = 0; j < M; ++j) sc.finish[j] = eval.delta(j);

  // Visit batch slots in random order so the random/EF mix is unbiased.
  sc.order.resize(N);
  std::iota(sc.order.begin(), sc.order.end(), std::size_t{0});
  rng.shuffle(sc.order);

  sc.slot_proc.resize(N);
  for (const std::size_t slot : sc.order) {
    std::size_t j;
    if (rng.bernoulli(random_fraction)) {
      j = rng.index(M);
    } else {
      j = 0;
      double best = sc.finish[0] + eval.task_cost_on(slot, 0);
      for (std::size_t k = 1; k < M; ++k) {
        const double t = sc.finish[k] + eval.task_cost_on(slot, k);
        if (t < best) {
          best = t;
          j = k;
        }
      }
    }
    sc.slot_proc[slot] = j;
    sc.finish[j] += eval.task_cost_on(slot, j);
  }
  out.assign_ordered(sc.order, sc.slot_proc, M);
}

ProcQueues list_schedule(const ScheduleEvaluator& eval, double random_fraction,
                         util::Rng& rng) {
  FlatSchedule flat;
  list_schedule_flat(eval, random_fraction, rng, flat);
  return flat.to_queues();
}

std::vector<ga::Chromosome> initial_population(const ScheduleCodec& codec,
                                               const ScheduleEvaluator& eval,
                                               std::size_t count,
                                               double random_fraction,
                                               util::Rng& rng) {
  std::vector<ga::Chromosome> pop;
  pop.reserve(count);
  FlatSchedule flat;
  for (std::size_t i = 0; i < count; ++i) {
    list_schedule_flat(eval, random_fraction, rng, flat);
    pop.push_back(codec.encode(flat));
  }
  return pop;
}

}  // namespace gasched::core
