#include "core/init.hpp"

#include <numeric>

namespace gasched::core {

ProcQueues list_schedule(const ScheduleEvaluator& eval, double random_fraction,
                         util::Rng& rng) {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  ProcQueues queues(M);
  // Finish-time accumulator per processor, starting from existing load.
  std::vector<double> finish(M);
  for (std::size_t j = 0; j < M; ++j) finish[j] = eval.delta(j);

  // Visit batch slots in random order so the random/EF mix is unbiased.
  std::vector<std::size_t> order(N);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (const std::size_t slot : order) {
    std::size_t j;
    if (rng.bernoulli(random_fraction)) {
      j = rng.index(M);
    } else {
      j = 0;
      double best = finish[0] + eval.task_cost_on(slot, 0);
      for (std::size_t k = 1; k < M; ++k) {
        const double t = finish[k] + eval.task_cost_on(slot, k);
        if (t < best) {
          best = t;
          j = k;
        }
      }
    }
    queues[j].push_back(slot);
    finish[j] += eval.task_cost_on(slot, j);
  }
  return queues;
}

std::vector<ga::Chromosome> initial_population(const ScheduleCodec& codec,
                                               const ScheduleEvaluator& eval,
                                               std::size_t count,
                                               double random_fraction,
                                               util::Rng& rng) {
  std::vector<ga::Chromosome> pop;
  pop.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pop.push_back(codec.encode(list_schedule(eval, random_fraction, rng)));
  }
  return pop;
}

}  // namespace gasched::core
