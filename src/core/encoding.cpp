#include "core/encoding.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::core {

void FlatSchedule::assign(const ProcQueues& queues) {
  offsets_.resize(queues.size() + 1);
  slots_.clear();
  offsets_[0] = 0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    slots_.insert(slots_.end(), queues[j].begin(), queues[j].end());
    offsets_[j + 1] = slots_.size();
  }
}

ProcQueues FlatSchedule::to_queues() const {
  ProcQueues q(num_procs());
  for (std::size_t j = 0; j < q.size(); ++j) {
    const auto view = queue(j);
    q[j].assign(view.begin(), view.end());
  }
  return q;
}

void FlatSchedule::assign_grouped(std::span<const std::size_t> slot_proc,
                                  std::size_t num_procs) {
  offsets_.assign(num_procs + 1, 0);
  for (const std::size_t j : slot_proc) ++offsets_[j + 1];
  for (std::size_t j = 0; j < num_procs; ++j) offsets_[j + 1] += offsets_[j];
  slots_.resize(slot_proc.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t s = 0; s < slot_proc.size(); ++s) {
    slots_[cursor_[slot_proc[s]]++] = s;
  }
}

void FlatSchedule::assign_ordered(std::span<const std::size_t> order,
                                  std::span<const std::size_t> slot_proc,
                                  std::size_t num_procs) {
  offsets_.assign(num_procs + 1, 0);
  for (const std::size_t j : slot_proc) ++offsets_[j + 1];
  for (std::size_t j = 0; j < num_procs; ++j) offsets_[j + 1] += offsets_[j];
  slots_.resize(slot_proc.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const std::size_t s : order) {
    slots_[cursor_[slot_proc[s]]++] = s;
  }
}

ScheduleCodec::ScheduleCodec(std::size_t num_tasks, std::size_t num_procs)
    : num_tasks_(num_tasks), num_procs_(num_procs) {
  if (num_procs == 0) {
    throw std::invalid_argument("ScheduleCodec: need at least one processor");
  }
}

ga::Chromosome ScheduleCodec::encode(const ProcQueues& queues) const {
  if (queues.size() != num_procs_) {
    throw std::invalid_argument("ScheduleCodec::encode: wrong queue count");
  }
  ga::Chromosome c;
  c.reserve(chromosome_length());
  for (std::size_t j = 0; j < num_procs_; ++j) {
    if (j > 0) c.push_back(delimiter_gene(j - 1));
    for (const std::size_t slot : queues[j]) {
      if (slot >= num_tasks_) {
        throw std::invalid_argument("ScheduleCodec::encode: slot out of range");
      }
      c.push_back(task_gene(slot));
    }
  }
  if (c.size() != chromosome_length()) {
    throw std::invalid_argument(
        "ScheduleCodec::encode: queues do not cover the batch exactly once");
  }
  return c;
}

ga::Chromosome ScheduleCodec::encode(const FlatSchedule& schedule) const {
  if (schedule.num_procs() != num_procs_) {
    throw std::invalid_argument("ScheduleCodec::encode: wrong queue count");
  }
  ga::Chromosome c;
  c.reserve(chromosome_length());
  for (std::size_t j = 0; j < num_procs_; ++j) {
    if (j > 0) c.push_back(delimiter_gene(j - 1));
    for (const std::size_t slot : schedule.queue(j)) {
      if (slot >= num_tasks_) {
        throw std::invalid_argument("ScheduleCodec::encode: slot out of range");
      }
      c.push_back(task_gene(slot));
    }
  }
  if (c.size() != chromosome_length()) {
    throw std::invalid_argument(
        "ScheduleCodec::encode: queues do not cover the batch exactly once");
  }
  return c;
}

ProcQueues ScheduleCodec::decode(const ga::Chromosome& c) const {
  ProcQueues queues(num_procs_);
  std::size_t proc = 0;
  for (const ga::Gene g : c) {
    if (is_delimiter(g)) {
      ++proc;
      if (proc >= num_procs_) {
        throw std::invalid_argument(
            "ScheduleCodec::decode: too many delimiters");
      }
    } else {
      queues[proc].push_back(task_slot(g));
    }
  }
  return queues;
}

void ScheduleCodec::decode_into(const ga::Chromosome& c,
                                FlatSchedule& out) const {
  out.slots_.clear();
  out.slots_.reserve(num_tasks_);
  out.offsets_.resize(num_procs_ + 1);
  out.offsets_[0] = 0;
  std::size_t proc = 0;
  for (const ga::Gene g : c) {
    if (is_delimiter(g)) {
      ++proc;
      if (proc >= num_procs_) {
        throw std::invalid_argument(
            "ScheduleCodec::decode: too many delimiters");
      }
      out.offsets_[proc] = out.slots_.size();
    } else {
      out.slots_.push_back(task_slot(g));
    }
  }
  for (std::size_t j = proc + 1; j <= num_procs_; ++j) {
    out.offsets_[j] = out.slots_.size();
  }
}

bool ScheduleCodec::valid(const ga::Chromosome& c) const {
  if (c.size() != chromosome_length()) return false;
  std::vector<bool> task_seen(num_tasks_, false);
  std::vector<bool> delim_seen(num_procs_ > 0 ? num_procs_ - 1 : 0, false);
  for (const ga::Gene g : c) {
    if (is_delimiter(g)) {
      const auto k = static_cast<std::size_t>(-g - 1);
      if (k >= delim_seen.size() || delim_seen[k]) return false;
      delim_seen[k] = true;
    } else {
      const auto slot = task_slot(g);
      if (slot >= num_tasks_ || task_seen[slot]) return false;
      task_seen[slot] = true;
    }
  }
  return true;
}

}  // namespace gasched::core
