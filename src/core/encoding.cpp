#include "core/encoding.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::core {

ScheduleCodec::ScheduleCodec(std::size_t num_tasks, std::size_t num_procs)
    : num_tasks_(num_tasks), num_procs_(num_procs) {
  if (num_procs == 0) {
    throw std::invalid_argument("ScheduleCodec: need at least one processor");
  }
}

ga::Chromosome ScheduleCodec::encode(const ProcQueues& queues) const {
  if (queues.size() != num_procs_) {
    throw std::invalid_argument("ScheduleCodec::encode: wrong queue count");
  }
  ga::Chromosome c;
  c.reserve(chromosome_length());
  for (std::size_t j = 0; j < num_procs_; ++j) {
    if (j > 0) c.push_back(delimiter_gene(j - 1));
    for (const std::size_t slot : queues[j]) {
      if (slot >= num_tasks_) {
        throw std::invalid_argument("ScheduleCodec::encode: slot out of range");
      }
      c.push_back(task_gene(slot));
    }
  }
  if (c.size() != chromosome_length()) {
    throw std::invalid_argument(
        "ScheduleCodec::encode: queues do not cover the batch exactly once");
  }
  return c;
}

ProcQueues ScheduleCodec::decode(const ga::Chromosome& c) const {
  ProcQueues queues(num_procs_);
  std::size_t proc = 0;
  for (const ga::Gene g : c) {
    if (is_delimiter(g)) {
      ++proc;
      if (proc >= num_procs_) {
        throw std::invalid_argument(
            "ScheduleCodec::decode: too many delimiters");
      }
    } else {
      queues[proc].push_back(task_slot(g));
    }
  }
  return queues;
}

bool ScheduleCodec::valid(const ga::Chromosome& c) const {
  if (c.size() != chromosome_length()) return false;
  std::vector<bool> task_seen(num_tasks_, false);
  std::vector<bool> delim_seen(num_procs_ > 0 ? num_procs_ - 1 : 0, false);
  for (const ga::Gene g : c) {
    if (is_delimiter(g)) {
      const auto k = static_cast<std::size_t>(-g - 1);
      if (k >= delim_seen.size() || delim_seen[k]) return false;
      delim_seen[k] = true;
    } else {
      const auto slot = task_slot(g);
      if (slot >= num_tasks_ || task_seen[slot]) return false;
      task_seen[slot] = true;
    }
  }
  return true;
}

}  // namespace gasched::core
