#pragma once
// Fitness function (paper §3.2).
//
// For a batch of N tasks with sizes t_i (MFLOPs) on M processors with
// rates P_j (Mflop/s) and previously assigned load L_j (MFLOPs):
//
//   δ_j = L_j / P_j                      (existing drain time)
//   ψ   = Σ_i t_i / Σ_j P_j + Σ_j δ_j    (theoretical optimal time)
//   C_j = δ_j + Σ_{y→j} (t_y / P_j + Γc_j)   (per-processor finish time)
//   E   = sqrt( Σ_j |ψ − C_j|² )         (relative error)
//   F   = 1 / E, clamped to [0, 1]       (fitness; larger = better)
//
// Γc_j is the smoothed per-link communication estimate; this term is what
// distinguishes the PN scheduler from the comm-oblivious ZO baseline
// (use_comm = false). Units follow DESIGN.md's documented correction: all
// summands of C_j are seconds.

#include <memory>
#include <span>
#include <vector>

#include "core/encoding.hpp"
#include "ga/engine.hpp"
#include "sim/policy.hpp"

namespace gasched::core {

/// Combined metrics of one schedule, computed in a single pass over the
/// per-processor completion times.
struct BatchEvaluation {
  double fitness = 0.0;         ///< F = min(1, 1/E)
  double makespan = 0.0;        ///< max_j C_j
  double relative_error = 0.0;  ///< E
};

/// Evaluates schedules for one batch against one system snapshot.
class ScheduleEvaluator {
 public:
  /// `task_sizes[slot]` is the MFLOP size of batch slot `slot`;
  /// `view` supplies P_j, L_j, and Γc_j. When `use_comm` is false the
  /// Γc_j term is dropped (ZO baseline). View rates must be positive.
  ScheduleEvaluator(std::vector<double> task_sizes,
                    const sim::SystemView& view, bool use_comm);

  /// Number of processors M.
  std::size_t num_procs() const noexcept { return rate_.size(); }
  /// Number of batch tasks N.
  std::size_t num_tasks() const noexcept { return size_.size(); }
  /// Theoretical optimal processing time ψ for this batch.
  double psi() const noexcept { return psi_; }

  /// Finish time C_j of processor j running `queue` (slots) after its
  /// existing load. Accepts any contiguous slot sequence — a FlatSchedule
  /// queue view or a legacy ProcQueues entry.
  double completion_time(std::size_t j,
                         std::span<const std::size_t> queue) const;

  /// Estimated makespan max_j C_j of a full decoded schedule.
  double makespan(const FlatSchedule& schedule) const;
  double makespan(const ProcQueues& queues) const;

  /// Relative error E of a schedule (see header comment).
  double relative_error(const FlatSchedule& schedule) const;
  double relative_error(const ProcQueues& queues) const;

  /// Fitness F = min(1, 1/E); E = 0 maps to 1 (perfect).
  double fitness(const FlatSchedule& schedule) const;
  double fitness(const ProcQueues& queues) const;

  /// Fitness, makespan, and relative error in one pass over the
  /// completion times — the hot-path form: no per-call containers, each
  /// C_j computed once.
  BatchEvaluation evaluate(const FlatSchedule& schedule) const;

  /// Size of batch slot `slot` in MFLOPs.
  double task_size(std::size_t slot) const { return size_.at(slot); }
  /// Per-task execution+comm cost on processor j (seconds).
  double task_cost_on(std::size_t slot, std::size_t j) const {
    return size_[slot] / rate_[j] + comm_[j];
  }
  /// Existing drain time δ_j of processor j (seconds).
  double delta(std::size_t j) const { return delta_.at(j); }
  /// Rate P_j of processor j (Mflop/s).
  double rate(std::size_t j) const { return rate_.at(j); }
  /// Communication estimate used for processor j (0 when comm disabled).
  double comm(std::size_t j) const { return comm_.at(j); }

 private:
  std::vector<double> size_;   // t_i per batch slot
  std::vector<double> rate_;   // P_j
  std::vector<double> delta_;  // δ_j = L_j / P_j
  std::vector<double> comm_;   // Γc_j (zeroed when use_comm == false)
  double psi_ = 0.0;
};

/// Caller-owned, reusable evaluation scratch: the flat decode target plus
/// any buffers the hot path needs. One workspace per evaluating thread;
/// the GA engine obtains them via ScheduleProblem::make_workspace().
struct EvalWorkspace final : ga::GaProblem::Workspace {
  FlatSchedule schedule;
};

/// GaProblem adapter: evaluates chromosomes through a codec + evaluator.
/// The workspace path (evaluate/improve) decodes into a reused
/// FlatSchedule — no per-call containers; fitness()/objective() remain as
/// allocating convenience adapters for one-off callers.
class ScheduleProblem final : public ga::GaProblem {
 public:
  /// Both references must outlive the problem. `rebalance_probes` bounds
  /// the random searches of the improvement heuristic (paper: 5).
  ScheduleProblem(const ScheduleCodec& codec, const ScheduleEvaluator& eval,
                  std::size_t rebalance_probes = 5);

  double fitness(const ga::Chromosome& c) const override;
  double objective(const ga::Chromosome& c) const override;
  /// One decode, both metrics; allocation-free with a non-null workspace.
  Evaluation evaluate(const ga::Chromosome& c,
                      Workspace* ws) const override;
  std::unique_ptr<Workspace> make_workspace() const override;
  /// The paper's re-balancing heuristic (§3.5); see core/rebalance.hpp.
  /// Returns true when a fitter schedule was found and applied.
  bool improve(ga::Chromosome& c, util::Rng& rng,
               Workspace* ws) const override;

 private:
  const ScheduleCodec& codec_;
  const ScheduleEvaluator& eval_;
  std::size_t probes_;
};

}  // namespace gasched::core
