#pragma once
// Fitness function (paper §3.2).
//
// For a batch of N tasks with sizes t_i (MFLOPs) on M processors with
// rates P_j (Mflop/s) and previously assigned load L_j (MFLOPs):
//
//   δ_j = L_j / P_j                      (existing drain time)
//   ψ   = Σ_i t_i / Σ_j P_j + Σ_j δ_j    (theoretical optimal time)
//   C_j = δ_j + Σ_{y→j} (t_y / P_j + Γc_j)   (per-processor finish time)
//   E   = sqrt( Σ_j |ψ − C_j|² )         (relative error)
//   F   = 1 / E, clamped to [0, 1]       (fitness; larger = better)
//
// Γc_j is the smoothed per-link communication estimate; this term is what
// distinguishes the PN scheduler from the comm-oblivious ZO baseline
// (use_comm = false). Units follow DESIGN.md's documented correction: all
// summands of C_j are seconds.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/encoding.hpp"
#include "core/numeric.hpp"
#include "ga/engine.hpp"
#include "sim/policy.hpp"

namespace gasched::core {

/// Combined metrics of one schedule, computed in a single pass over the
/// per-processor completion times.
struct BatchEvaluation {
  double fitness = 0.0;         ///< F = min(1, 1/E)
  double makespan = 0.0;        ///< max_j C_j
  double relative_error = 0.0;  ///< E
};

/// Cached per-queue load state of one priced schedule: every C_j, its
/// squared ψ-deviation, and the reduced metrics. Filled by
/// ScheduleEvaluator::load()/load_decoded() and kept current by the
/// evaluate_swap()/evaluate_move() delta paths, which re-price only the
/// changed queues and reassemble the reductions from the cache.
///
/// Ownership/invalidation contract (docs/evaluation.md): a QueueLoads is
/// valid only for (evaluator, schedule) pairs the caller controls — it
/// holds no back-references, so any edit to the schedule outside the
/// delta APIs, or pricing through a different evaluator, silently stales
/// it. The cache lives in EvalWorkspace next to the decode target and is
/// rebuilt from scratch by every full pricing.
struct QueueLoads {
  std::vector<double> completion;  ///< C_j per processor
  std::vector<double> dev_sq;      ///< (ψ − C_j)² per processor (exact mode)
  double sum_sq = 0.0;             ///< Σ_j dev squares (see mode note)
  double max_completion = 0.0;     ///< max_j C_j (makespan)
  std::size_t heaviest = 0;        ///< first argmax_j C_j
  BatchEvaluation eval;            ///< reduced metrics of the cached state
  /// Tolerance-audit sampling counter of this workspace's fast pricings
  /// (kFast only): every sample_period-th pricing through this cache is
  /// shadow-priced exactly. Per-workspace state, so parallel evaluation
  /// never races on it.
  std::uint64_t audit_tick = 0;

  // Mode note (docs/evaluation.md): under kExact, dev_sq caches the
  // per-queue squares and sum_sq is their j-ascending sum — the bitwise
  // delta-repricing contract. Under kFast, dev_sq is not maintained
  // (reductions recompute from `completion` with the SIMD kernel, which
  // is what keeps fast delta pricing bit-identical to fast full pricing)
  // and sum_sq holds the kernel's vector-order sum.
};

/// Evaluates schedules for one batch against one system snapshot.
///
/// Numeric modes (core/numeric.hpp; docs/evaluation.md): under kExact
/// (the default) every path keeps the canonical left-to-right summation
/// and its bit-identity promises. Under kFast, the full-pricing paths —
/// evaluate(FlatSchedule), load(), load_decoded(), the delta paths, and
/// the batched population pricing — route through the SIMD kernels of
/// core/kernels.hpp, and the evaluator captures ToleranceAudit::current()
/// at construction to shadow-price a deterministic sample of evaluations
/// through the exact path. The convenience adapters (ProcQueues
/// overloads, completion_time, fitness/makespan/relative_error) stay
/// exact in both modes: they serve one-off callers where vectorization
/// buys nothing and bit-stability is worth keeping.
class ScheduleEvaluator {
 public:
  /// `task_sizes[slot]` is the MFLOP size of batch slot `slot`;
  /// `view` supplies P_j, L_j, and Γc_j. When `use_comm` is false the
  /// Γc_j term is dropped (ZO baseline). View rates must be positive.
  /// `mode` defaults to the process-wide default_numeric_mode().
  ScheduleEvaluator(std::vector<double> task_sizes,
                    const sim::SystemView& view, bool use_comm,
                    NumericMode mode = default_numeric_mode());

  /// Numeric mode this evaluator prices with.
  NumericMode numeric_mode() const noexcept { return mode_; }

  /// Fast-path pricing shape, fixed at construction from the problem
  /// geometry (only meaningful under kFast). When the mean queue is long
  /// enough (N/M >= kGatherShapeMinSlotsPerQueue) fast pricing gathers
  /// each queue over its cost pane with the SIMD kernels; below that the
  /// gather setup cost exceeds the work (measured: ~4-slot queues price
  /// slower through the gather than through the fused scalar walk), so
  /// fast pricing keeps the exact per-queue summation and vectorizes
  /// only the metrics reduction. Both shapes honour the same invariant:
  /// fast delta re-pricing is bit-identical to fast full pricing.
  bool gather_shape() const noexcept { return gather_shape_; }

  /// Number of processors M.
  std::size_t num_procs() const noexcept { return rate_.size(); }
  /// Number of batch tasks N.
  std::size_t num_tasks() const noexcept { return size_.size(); }
  /// Theoretical optimal processing time ψ for this batch.
  double psi() const noexcept { return psi_; }

  /// Finish time C_j of processor j running `queue` (slots) after its
  /// existing load. Accepts any contiguous slot sequence — a FlatSchedule
  /// queue view or a legacy ProcQueues entry.
  double completion_time(std::size_t j,
                         std::span<const std::size_t> queue) const;

  /// Estimated makespan max_j C_j of a full decoded schedule.
  double makespan(const FlatSchedule& schedule) const;
  double makespan(const ProcQueues& queues) const;

  /// Relative error E of a schedule (see header comment).
  double relative_error(const FlatSchedule& schedule) const;
  double relative_error(const ProcQueues& queues) const;

  /// Fitness F = min(1, 1/E); E = 0 maps to 1 (perfect).
  double fitness(const FlatSchedule& schedule) const;
  double fitness(const ProcQueues& queues) const;

  /// Fitness, makespan, and relative error in one pass over the
  /// completion times — the hot-path form: no per-call containers, each
  /// C_j computed once.
  BatchEvaluation evaluate(const FlatSchedule& schedule) const;

  /// Full pricing into the per-queue load cache: computes every C_j with
  /// the canonical left-to-right summation, caches the squared
  /// deviations, and reduces sum/max/argmax in ascending j. The returned
  /// metrics are bit-identical to evaluate(schedule).
  BatchEvaluation load(const FlatSchedule& schedule, QueueLoads& out) const;

  /// Fused decode + full pricing: decodes `c` into `schedule` (same
  /// result as ScheduleCodec::decode_into) while accumulating each C_j in
  /// queue order — one pass over the chromosome instead of a decode pass
  /// plus a pricing pass. Bit-identical to decode_into + load.
  BatchEvaluation load_decoded(const ScheduleCodec& codec,
                               const ga::Chromosome& c,
                               FlatSchedule& schedule, QueueLoads& out) const;

  /// Delta re-pricing after two queues changed (a task swap between
  /// `qa` and `qb`, or any edit confined to those queues). `schedule`
  /// must already reflect the change and `loads` must be current for the
  /// pre-change schedule. Re-prices only the two queues with the
  /// canonical left-to-right summation and reassembles the reductions
  /// from the cache in ascending j, so the result — and the updated
  /// `loads` — is bit-identical to a full load(schedule). O(|qa|+|qb|+M).
  BatchEvaluation evaluate_swap(const FlatSchedule& schedule,
                                QueueLoads& loads, std::size_t qa,
                                std::size_t qb) const;

  /// Delta re-pricing after a task moved from queue `from` to queue `to`
  /// (same contract and cost as evaluate_swap; the two names document
  /// intent — both re-price exactly the two changed queues).
  BatchEvaluation evaluate_move(const FlatSchedule& schedule,
                                QueueLoads& loads, std::size_t from,
                                std::size_t to) const;

  /// Vectorizable bulk kernel: C_j as a contiguous slot-size sum followed
  /// by one divide — Σ t_y / P_j + n·Γc_j + δ_j. Mathematically equal to
  /// completion_time() but NOT bitwise (different FP association), so the
  /// canonical pricing paths never use it; it exists for throughput
  /// experiments (bench BM_CompletionTimeKernel) and future opt-in
  /// consumers that tolerate last-ulp drift.
  double completion_time_bulk(std::size_t j,
                              std::span<const std::size_t> queue) const;

  /// Size of batch slot `slot` in MFLOPs.
  double task_size(std::size_t slot) const { return size_.at(slot); }
  /// Per-task execution+comm cost on processor j (seconds). Served from
  /// the precomputed cost table — the same double the defining expression
  /// t_slot / P_j + Γc_j produced at construction, without the division.
  double task_cost_on(std::size_t slot, std::size_t j) const {
    return cost_[j * size_.size() + slot];
  }
  /// Processor j's contiguous cost pane: cost_row(j)[slot] ==
  /// task_cost_on(slot, j) for slot in [0, num_tasks()). The cost table
  /// is laid out structure-of-arrays — one pane per processor — so queue
  /// pricing is a gather over a single pane; this is the pointer the
  /// SIMD kernels (core/kernels.hpp) consume.
  const double* cost_row(std::size_t j) const {
    return cost_.data() + j * size_.size();
  }

  /// Reduces one M-double completion lane to metrics with the SIMD
  /// reduction kernel — the per-lane finish of the batched population
  /// pricing (ScheduleProblem::evaluate_batch). Requires kFast.
  BatchEvaluation reduce_completion_fast(const double* completion) const;
  /// Tolerance-audit sampling hook of the batched path: bumps `tick`
  /// and, on the sampled period, re-decodes `c` into `scratch` and
  /// shadow-prices it exactly against `fast` (hard error on violation).
  void audit_batched(const ScheduleCodec& codec, const ga::Chromosome& c,
                     const BatchEvaluation& fast, FlatSchedule& scratch,
                     std::uint64_t& tick) const;
  /// Existing drain time δ_j of processor j (seconds).
  double delta(std::size_t j) const { return delta_.at(j); }
  /// Rate P_j of processor j (Mflop/s).
  double rate(std::size_t j) const { return rate_.at(j); }
  /// Communication estimate used for processor j (0 when comm disabled).
  double comm(std::size_t j) const { return comm_.at(j); }

 private:
  /// Recomputes the j-ascending reductions (sum_sq/max/argmax/eval) of
  /// `loads` from its cached completion/dev_sq arrays.
  BatchEvaluation reduce(QueueLoads& loads) const;
  /// Re-prices exactly queue `j` of `schedule` into `loads` (canonical
  /// left-to-right summation), without touching the reductions.
  void reprice_queue(const FlatSchedule& schedule, QueueLoads& loads,
                     std::size_t j) const;

  /// The canonical single-pass evaluation (always exact) — the shadow
  /// path the tolerance audit compares against.
  BatchEvaluation evaluate_exact(const FlatSchedule& schedule) const;
  /// Kernel-summed C_j of one queue: δ_j + sum_gather over the pane.
  double fast_queue_completion(std::size_t j,
                               std::span<const std::size_t> queue) const;
  /// Shape-dispatched fast C_j: the gather kernel when gather_shape(),
  /// the canonical left-to-right walk otherwise. Every fast pricing path
  /// (full and delta) routes per-queue sums through this one function so
  /// the fast-full == fast-delta bit-identity holds in either shape.
  double fast_completion(std::size_t j,
                         std::span<const std::size_t> queue) const;
  /// The fused decode+price walk shared by the exact load_decoded() and
  /// the short-queue fast shape: decodes `c` into `schedule` while
  /// accumulating each C_j (seeded with δ_j) into `completion` in queue
  /// order — the same left-to-right summation completion_time() performs.
  void fused_decode_price(const ScheduleCodec& codec, const ga::Chromosome& c,
                          FlatSchedule& schedule,
                          std::vector<double>& completion) const;
  /// Kernel reduction of `loads` (completion array only; dev_sq is not
  /// maintained under kFast).
  BatchEvaluation reduce_fast(QueueLoads& loads) const;
  /// Fast full pricing (kFast body of load()).
  BatchEvaluation load_fast(const FlatSchedule& schedule,
                            QueueLoads& out) const;
  /// Shadow-prices `schedule` exactly and records the deviation of
  /// `fast` with the captured audit (hard error on violation).
  void shadow_check(const FlatSchedule& schedule,
                    const BatchEvaluation& fast) const;
  /// Samples the tolerance audit: every sample_period-th bump of `tick`
  /// shadow-prices `schedule` exactly and records the deviation from
  /// `fast`. Hard-errors (throws) on a violation.
  void maybe_audit(const FlatSchedule& schedule, const BatchEvaluation& fast,
                   std::uint64_t& tick) const;

  std::vector<double> size_;   // t_i per batch slot
  std::vector<double> rate_;   // P_j
  std::vector<double> delta_;  // δ_j = L_j / P_j
  std::vector<double> comm_;   // Γc_j (zeroed when use_comm == false)
  std::vector<double> cost_;   // cost_[j*N + slot]: per-processor panes
  double psi_ = 0.0;
  NumericMode mode_ = NumericMode::kExact;
  bool gather_shape_ = false;        // see gather_shape()
  ToleranceAudit* audit_ = nullptr;  // captured at construction (kFast)
};

/// Mean slots-per-queue (N/M) at which kFast switches from the fused
/// scalar walk to SIMD gather pricing — below this the gather setup cost
/// dominates ~4-slot queues (see ScheduleEvaluator::gather_shape()).
inline constexpr std::size_t kGatherShapeMinSlotsPerQueue = 8;

/// Caller-owned, reusable evaluation scratch: the flat decode target plus
/// the per-queue load cache the delta-pricing paths maintain. One
/// workspace per evaluating thread; the GA engine obtains them via
/// ScheduleProblem::make_workspace().
struct EvalWorkspace final : ga::GaProblem::Workspace {
  FlatSchedule schedule;
  QueueLoads loads;
  /// Batched fast-path lanes (ScheduleProblem::evaluate_batch under
  /// kFast): B decoded schedules and B contiguous M-double completion
  /// lanes priced per population block, plus their reduced metrics.
  /// Reused across generations — capacity grows to the largest dirty
  /// block once, then steady-state evaluation allocates nothing.
  std::vector<FlatSchedule> lane_schedule;
  std::vector<double> lane_completion;
  std::vector<BatchEvaluation> lane_eval;
};

/// GaProblem adapter: evaluates chromosomes through a codec + evaluator.
/// The workspace path (evaluate/improve) decodes into a reused
/// FlatSchedule — no per-call containers; fitness()/objective() remain as
/// allocating convenience adapters for one-off callers.
class ScheduleProblem final : public ga::GaProblem {
 public:
  /// Both references must outlive the problem. `rebalance_probes` bounds
  /// the random searches of the improvement heuristic (paper: 5).
  ScheduleProblem(const ScheduleCodec& codec, const ScheduleEvaluator& eval,
                  std::size_t rebalance_probes = 5);

  double fitness(const ga::Chromosome& c) const override;
  double objective(const ga::Chromosome& c) const override;
  /// One decode, both metrics; allocation-free with a non-null workspace.
  Evaluation evaluate(const ga::Chromosome& c,
                      Workspace* ws) const override;
  /// Population-block evaluation. Under kExact this is the base-class
  /// loop (bit-identical to per-individual evaluate()); under kFast the
  /// block decodes into reused workspace lanes, prices every queue with
  /// the SIMD kernels, then reduces lane by lane — the batched
  /// multi-chromosome fast path.
  void evaluate_batch(std::span<const ga::Chromosome> pop,
                      std::span<const std::size_t> indices, Workspace* ws,
                      Evaluation* out) const override;
  std::unique_ptr<Workspace> make_workspace() const override;
  /// The paper's re-balancing heuristic (§3.5); see core/rebalance.hpp.
  /// Returns true when a fitter schedule was found and applied.
  bool improve(ga::Chromosome& c, util::Rng& rng,
               Workspace* ws) const override;

 private:
  const ScheduleCodec& codec_;
  const ScheduleEvaluator& eval_;
  std::size_t probes_;
};

}  // namespace gasched::core
