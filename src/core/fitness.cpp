#include "core/fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"
#include "core/rebalance.hpp"

namespace gasched::core {

ScheduleEvaluator::ScheduleEvaluator(std::vector<double> task_sizes,
                                     const sim::SystemView& view,
                                     bool use_comm, NumericMode mode)
    : size_(std::move(task_sizes)),
      mode_(mode),
      audit_(mode == NumericMode::kFast ? ToleranceAudit::current()
                                        : nullptr) {
  if (view.procs.empty()) {
    throw std::invalid_argument("ScheduleEvaluator: empty system view");
  }
  rate_.reserve(view.size());
  delta_.reserve(view.size());
  comm_.reserve(view.size());
  double total_rate = 0.0;
  double sum_delta = 0.0;
  for (const auto& p : view.procs) {
    if (!(p.rate > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive rate");
    }
    rate_.push_back(p.rate);
    const double d = p.pending_mflops / p.rate;
    delta_.push_back(d);
    sum_delta += d;
    comm_.push_back(use_comm ? p.comm_estimate : 0.0);
    total_rate += p.rate;
  }
  double total_work = 0.0;
  for (const double t : size_) {
    if (!(t > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive task size");
    }
    total_work += t;
  }
  // ψ = Σ_i t_i / Σ_j P_j + Σ_j δ_j  (paper §3.2).
  psi_ = total_work / total_rate + sum_delta;

  // Per-(processor, slot) cost table: the division and comm add are
  // loop-invariant per processor, so hoist them out of every pricing loop
  // once here. Each entry is the exact double the defining expression
  // produces, so table-served pricing is bit-identical to the original
  // per-slot arithmetic.
  const std::size_t N = size_.size();
  cost_.resize(N * rate_.size());
  for (std::size_t j = 0; j < rate_.size(); ++j) {
    double* row = cost_.data() + j * N;
    const double rate = rate_[j];
    const double comm = comm_[j];
    for (std::size_t slot = 0; slot < N; ++slot) {
      row[slot] = size_[slot] / rate + comm;
    }
  }
  // Fast-path shape: gather pricing only pays off once queues are long
  // enough to fill SIMD lanes (see gather_shape() in the header).
  gather_shape_ = mode_ == NumericMode::kFast &&
                  N >= kGatherShapeMinSlotsPerQueue * rate_.size();
}

double ScheduleEvaluator::completion_time(
    std::size_t j, std::span<const std::size_t> queue) const {
  double c = delta_[j];
  const double* cost = cost_.data() + j * size_.size();
  for (const std::size_t slot : queue) {
    c += cost[slot];
  }
  return c;
}

double ScheduleEvaluator::completion_time_bulk(
    std::size_t j, std::span<const std::size_t> queue) const {
  double sum = 0.0;
  for (const std::size_t slot : queue) {
    sum += size_[slot];
  }
  return delta_[j] + sum / rate_[j] +
         static_cast<double>(queue.size()) * comm_[j];
}

double ScheduleEvaluator::makespan(const FlatSchedule& schedule) const {
  double m = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    m = std::max(m, completion_time(j, schedule.queue(j)));
  }
  return m;
}

double ScheduleEvaluator::makespan(const ProcQueues& queues) const {
  double m = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    m = std::max(m, completion_time(j, queues[j]));
  }
  return m;
}

double ScheduleEvaluator::relative_error(const FlatSchedule& schedule) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double dev = psi_ - completion_time(j, schedule.queue(j));
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

double ScheduleEvaluator::relative_error(const ProcQueues& queues) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    const double dev = psi_ - completion_time(j, queues[j]);
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

namespace {

double fitness_of_error(double e) {
  if (e <= 1.0) return 1.0;  // F = 1/E clamped into [0, 1]
  return 1.0 / e;
}

}  // namespace

double ScheduleEvaluator::fitness(const FlatSchedule& schedule) const {
  return fitness_of_error(relative_error(schedule));
}

double ScheduleEvaluator::fitness(const ProcQueues& queues) const {
  return fitness_of_error(relative_error(queues));
}

BatchEvaluation ScheduleEvaluator::evaluate_exact(
    const FlatSchedule& schedule) const {
  double m = 0.0;
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double cj = completion_time(j, schedule.queue(j));
    m = std::max(m, cj);
    const double dev = psi_ - cj;
    sum_sq += dev * dev;
  }
  const double e = std::sqrt(sum_sq);
  return {fitness_of_error(e), m, e};
}

namespace {

/// Audit sampling stream of the stateless fast evaluate(FlatSchedule)
/// path: per-thread, so concurrent callers never race (workspace paths
/// use the per-workspace QueueLoads::audit_tick instead).
thread_local std::uint64_t t_stateless_audit_tick = 0;

}  // namespace

double ScheduleEvaluator::fast_queue_completion(
    std::size_t j, std::span<const std::size_t> queue) const {
  return delta_[j] +
         kernels::sum_gather(cost_row(j), queue.data(), queue.size());
}

double ScheduleEvaluator::fast_completion(
    std::size_t j, std::span<const std::size_t> queue) const {
  if (gather_shape_) return fast_queue_completion(j, queue);
  return completion_time(j, queue);
}

void ScheduleEvaluator::shadow_check(const FlatSchedule& schedule,
                                     const BatchEvaluation& fast) const {
  const BatchEvaluation exact = evaluate_exact(schedule);
  // One deviation per sample: the worst of the three reported metrics.
  // Fitness lives in [0, 1] (scale 1); makespan and E are times whose
  // natural scale is ψ — see core::metric_deviation for the floor rule.
  const double dev = std::max(
      {metric_deviation(fast.fitness, exact.fitness, 1.0),
       metric_deviation(fast.makespan, exact.makespan, psi_),
       metric_deviation(fast.relative_error, exact.relative_error, psi_)});
  audit_->record(dev);
}

void ScheduleEvaluator::maybe_audit(const FlatSchedule& schedule,
                                    const BatchEvaluation& fast,
                                    std::uint64_t& tick) const {
  if (audit_ == nullptr) return;
  const std::size_t period = audit_->config().sample_period;
  if (period == 0) return;
  if (++tick % period != 0) return;
  shadow_check(schedule, fast);
}

void ScheduleEvaluator::audit_batched(const ScheduleCodec& codec,
                                      const ga::Chromosome& c,
                                      const BatchEvaluation& fast,
                                      FlatSchedule& scratch,
                                      std::uint64_t& tick) const {
  if (audit_ == nullptr) return;
  const std::size_t period = audit_->config().sample_period;
  if (period == 0) return;
  if (++tick % period != 0) return;
  // Sampled lanes re-decode (rare — once per sample_period pricings);
  // unsampled lanes never pay a second pass.
  codec.decode_into(c, scratch);
  shadow_check(scratch, fast);
}

BatchEvaluation ScheduleEvaluator::evaluate(
    const FlatSchedule& schedule) const {
  if (mode_ != NumericMode::kFast) return evaluate_exact(schedule);
  double m = 0.0;
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double cj = fast_completion(j, schedule.queue(j));
    m = std::max(m, cj);
    const double dev = psi_ - cj;
    sum_sq += dev * dev;
  }
  const double e = std::sqrt(sum_sq);
  const BatchEvaluation fast{fitness_of_error(e), m, e};
  maybe_audit(schedule, fast, t_stateless_audit_tick);
  return fast;
}

BatchEvaluation ScheduleEvaluator::reduce(QueueLoads& loads) const {
  // The reductions are always reassembled in ascending j from the cached
  // per-queue values — never adjusted incrementally — so a delta re-price
  // reduces the exact same doubles in the exact same order as a full
  // pricing: bit-identical sum_sq, makespan, and first-argmax.
  double m = 0.0;
  double sum_sq = 0.0;
  std::size_t heavy = 0;
  double heavy_time = -1.0;
  for (std::size_t j = 0; j < loads.completion.size(); ++j) {
    const double cj = loads.completion[j];
    m = std::max(m, cj);
    sum_sq += loads.dev_sq[j];
    if (cj > heavy_time) {
      heavy_time = cj;
      heavy = j;
    }
  }
  loads.sum_sq = sum_sq;
  loads.max_completion = m;
  loads.heaviest = heavy;
  const double e = std::sqrt(sum_sq);
  loads.eval = {fitness_of_error(e), m, e};
  return loads.eval;
}

void ScheduleEvaluator::reprice_queue(const FlatSchedule& schedule,
                                      QueueLoads& loads,
                                      std::size_t j) const {
  const double cj = completion_time(j, schedule.queue(j));
  loads.completion[j] = cj;
  const double dev = psi_ - cj;
  loads.dev_sq[j] = dev * dev;
}

BatchEvaluation ScheduleEvaluator::reduce_fast(QueueLoads& loads) const {
  // Kernel reduction straight from the completion array. A fast delta
  // re-price reduces the exact same completions through the exact same
  // kernel as a fast full pricing, so within kFast the delta paths stay
  // bit-identical to load() — the invariant the rebalance loop's
  // improve-supplied evaluation channel needs.
  const kernels::Reduction r = kernels::reduce_deviation(
      loads.completion.data(), loads.completion.size(), psi_);
  loads.sum_sq = r.sum_sq;
  loads.max_completion = r.max;
  loads.heaviest = r.argmax;
  const double e = std::sqrt(r.sum_sq);
  loads.eval = {fitness_of_error(e), r.max, e};
  return loads.eval;
}

BatchEvaluation ScheduleEvaluator::load_fast(const FlatSchedule& schedule,
                                             QueueLoads& out) const {
  const std::size_t M = schedule.num_procs();
  out.completion.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    out.completion[j] = fast_completion(j, schedule.queue(j));
  }
  const BatchEvaluation fast = reduce_fast(out);
  maybe_audit(schedule, fast, out.audit_tick);
  return fast;
}

BatchEvaluation ScheduleEvaluator::load(const FlatSchedule& schedule,
                                        QueueLoads& out) const {
  if (mode_ == NumericMode::kFast) return load_fast(schedule, out);
  const std::size_t M = schedule.num_procs();
  out.completion.resize(M);
  out.dev_sq.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    reprice_queue(schedule, out, j);
  }
  return reduce(out);
}

void ScheduleEvaluator::fused_decode_price(
    const ScheduleCodec& codec, const ga::Chromosome& c,
    FlatSchedule& schedule, std::vector<double>& completion) const {
  // Mirror of ScheduleCodec::decode_into with the pricing fused into the
  // walk: as each slot lands in its queue its cost is added to that
  // queue's running C_j — the same left-to-right, queue-order summation
  // completion_time() performs, so the result is bit-identical to
  // decode_into + per-queue completion_time at half the passes over the
  // chromosome.
  const std::size_t M = codec.num_procs();
  const std::size_t N = size_.size();
  schedule.slots_.clear();
  schedule.slots_.reserve(codec.num_tasks());
  schedule.offsets_.resize(M + 1);
  schedule.offsets_[0] = 0;
  completion.resize(M);
  for (std::size_t j = 0; j < M; ++j) completion[j] = delta_[j];
  std::size_t proc = 0;
  for (const ga::Gene g : c) {
    if (ScheduleCodec::is_delimiter(g)) {
      ++proc;
      if (proc >= M) {
        throw std::invalid_argument(
            "ScheduleCodec::decode: too many delimiters");
      }
      schedule.offsets_[proc] = schedule.slots_.size();
    } else {
      const std::size_t slot = ScheduleCodec::task_slot(g);
      schedule.slots_.push_back(slot);
      completion[proc] += cost_[proc * N + slot];
    }
  }
  for (std::size_t j = proc + 1; j <= M; ++j) {
    schedule.offsets_[j] = schedule.slots_.size();
  }
}

BatchEvaluation ScheduleEvaluator::load_decoded(const ScheduleCodec& codec,
                                                const ga::Chromosome& c,
                                                FlatSchedule& schedule,
                                                QueueLoads& out) const {
  if (mode_ == NumericMode::kFast) {
    if (gather_shape_) {
      // Long queues: decode once, then gather-sum each queue over its
      // cost pane with the SIMD kernels.
      codec.decode_into(c, schedule);
      return load_fast(schedule, out);
    }
    // Short queues: the fused scalar walk prices faster than any gather;
    // fast mode keeps it and vectorizes only the metrics reduction.
    fused_decode_price(codec, c, schedule, out.completion);
    const BatchEvaluation fast = reduce_fast(out);
    maybe_audit(schedule, fast, out.audit_tick);
    return fast;
  }
  fused_decode_price(codec, c, schedule, out.completion);
  const std::size_t M = codec.num_procs();
  out.dev_sq.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    const double dev = psi_ - out.completion[j];
    out.dev_sq[j] = dev * dev;
  }
  return reduce(out);
}

BatchEvaluation ScheduleEvaluator::evaluate_swap(const FlatSchedule& schedule,
                                                 QueueLoads& loads,
                                                 std::size_t qa,
                                                 std::size_t qb) const {
  if (mode_ == NumericMode::kFast) {
    loads.completion[qa] = fast_completion(qa, schedule.queue(qa));
    if (qb != qa) {
      loads.completion[qb] = fast_completion(qb, schedule.queue(qb));
    }
    const BatchEvaluation fast = reduce_fast(loads);
    maybe_audit(schedule, fast, loads.audit_tick);
    return fast;
  }
  reprice_queue(schedule, loads, qa);
  if (qb != qa) reprice_queue(schedule, loads, qb);
  return reduce(loads);
}

BatchEvaluation ScheduleEvaluator::evaluate_move(const FlatSchedule& schedule,
                                                 QueueLoads& loads,
                                                 std::size_t from,
                                                 std::size_t to) const {
  return evaluate_swap(schedule, loads, from, to);
}

BatchEvaluation ScheduleEvaluator::reduce_completion_fast(
    const double* completion) const {
  const kernels::Reduction r =
      kernels::reduce_deviation(completion, num_procs(), psi_);
  const double e = std::sqrt(r.sum_sq);
  return {fitness_of_error(e), r.max, e};
}

ScheduleProblem::ScheduleProblem(const ScheduleCodec& codec,
                                 const ScheduleEvaluator& eval,
                                 std::size_t rebalance_probes)
    : codec_(codec), eval_(eval), probes_(rebalance_probes) {}

double ScheduleProblem::fitness(const ga::Chromosome& c) const {
  return eval_.fitness(codec_.decode(c));
}

double ScheduleProblem::objective(const ga::Chromosome& c) const {
  return eval_.makespan(codec_.decode(c));
}

ga::GaProblem::Evaluation ScheduleProblem::evaluate(const ga::Chromosome& c,
                                                    Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return evaluate(c, &local);
  }
  auto& w = static_cast<EvalWorkspace&>(*ws);
  const BatchEvaluation e =
      eval_.load_decoded(codec_, c, w.schedule, w.loads);
  return {e.fitness, e.makespan};
}

void ScheduleProblem::evaluate_batch(std::span<const ga::Chromosome> pop,
                                     std::span<const std::size_t> indices,
                                     Workspace* ws, Evaluation* out) const {
  // The queue-major gather machinery below only pays off in the gather
  // shape (long queues). In the short-queue shape the per-chromosome
  // fused decode+price walk (load_decoded via the base loop) is already
  // the fastest pricing we have, so delegate to it.
  if (eval_.numeric_mode() != NumericMode::kFast || !eval_.gather_shape() ||
      ws == nullptr || indices.empty()) {
    ga::GaProblem::evaluate_batch(pop, indices, ws, out);
    return;
  }
  auto& w = static_cast<EvalWorkspace&>(*ws);
  const std::size_t B = indices.size();
  const std::size_t M = eval_.num_procs();
  if (w.lane_schedule.size() < B) w.lane_schedule.resize(B);
  w.lane_completion.resize(B * M);
  w.lane_eval.resize(B);
  // Pass 1: decode each block member into its own reused flat schedule.
  for (std::size_t k = 0; k < B; ++k) {
    codec_.decode_into(pop[indices[k]], w.lane_schedule[k]);
  }
  // Pass 2: queue-major gather-pricing — for each processor j, price
  // queue j of *every* lane over pane row j while the row is hot in L1.
  // Lane-major order would stream the whole cost table (M·N doubles)
  // once per chromosome; queue-major streams it once per block. The
  // per-queue sums are the same doubles either way, so this ordering is
  // a pure locality choice.
  const kernels::SumGatherFn gather = kernels::sum_gather_fn();
  for (std::size_t j = 0; j < M; ++j) {
    const double* row = eval_.cost_row(j);
    const double dj = eval_.delta(j);
    double* lanes = w.lane_completion.data();
    for (std::size_t k = 0; k < B; ++k) {
      const auto queue = w.lane_schedule[k].queue(j);
      lanes[k * M + j] = dj + gather(row, queue.data(), queue.size());
    }
  }
  // Pass 3: one kernel-reduction sweep over the lanes. The audit samples
  // from the same per-workspace stream as the single-chromosome paths; a
  // sampled lane re-decodes into the workspace schedule for its exact
  // shadow pricing.
  for (std::size_t k = 0; k < B; ++k) {
    const BatchEvaluation fast =
        eval_.reduce_completion_fast(w.lane_completion.data() + k * M);
    w.lane_eval[k] = fast;
    eval_.audit_batched(codec_, pop[indices[k]], fast, w.schedule,
                        w.loads.audit_tick);
    out[k] = {fast.fitness, fast.makespan};
  }
}

std::unique_ptr<ga::GaProblem::Workspace> ScheduleProblem::make_workspace()
    const {
  return std::make_unique<EvalWorkspace>();
}

bool ScheduleProblem::improve(ga::Chromosome& c, util::Rng& rng,
                              Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return rebalance_once(c, codec_, eval_, rng, probes_, local);
  }
  return rebalance_once(c, codec_, eval_, rng, probes_,
                        static_cast<EvalWorkspace&>(*ws));
}

}  // namespace gasched::core
