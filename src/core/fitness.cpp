#include "core/fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rebalance.hpp"

namespace gasched::core {

ScheduleEvaluator::ScheduleEvaluator(std::vector<double> task_sizes,
                                     const sim::SystemView& view,
                                     bool use_comm)
    : size_(std::move(task_sizes)) {
  if (view.procs.empty()) {
    throw std::invalid_argument("ScheduleEvaluator: empty system view");
  }
  rate_.reserve(view.size());
  delta_.reserve(view.size());
  comm_.reserve(view.size());
  double total_rate = 0.0;
  double sum_delta = 0.0;
  for (const auto& p : view.procs) {
    if (!(p.rate > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive rate");
    }
    rate_.push_back(p.rate);
    const double d = p.pending_mflops / p.rate;
    delta_.push_back(d);
    sum_delta += d;
    comm_.push_back(use_comm ? p.comm_estimate : 0.0);
    total_rate += p.rate;
  }
  double total_work = 0.0;
  for (const double t : size_) {
    if (!(t > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive task size");
    }
    total_work += t;
  }
  // ψ = Σ_i t_i / Σ_j P_j + Σ_j δ_j  (paper §3.2).
  psi_ = total_work / total_rate + sum_delta;
}

double ScheduleEvaluator::completion_time(
    std::size_t j, const std::vector<std::size_t>& queue) const {
  double c = delta_[j];
  for (const std::size_t slot : queue) {
    c += size_[slot] / rate_[j] + comm_[j];
  }
  return c;
}

double ScheduleEvaluator::makespan(const ProcQueues& queues) const {
  double m = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    m = std::max(m, completion_time(j, queues[j]));
  }
  return m;
}

double ScheduleEvaluator::relative_error(const ProcQueues& queues) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    const double dev = psi_ - completion_time(j, queues[j]);
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

double ScheduleEvaluator::fitness(const ProcQueues& queues) const {
  const double e = relative_error(queues);
  if (e <= 1.0) return 1.0;  // F = 1/E clamped into [0, 1]
  return 1.0 / e;
}

ScheduleProblem::ScheduleProblem(const ScheduleCodec& codec,
                                 const ScheduleEvaluator& eval,
                                 std::size_t rebalance_probes)
    : codec_(codec), eval_(eval), probes_(rebalance_probes) {}

double ScheduleProblem::fitness(const ga::Chromosome& c) const {
  return eval_.fitness(codec_.decode(c));
}

double ScheduleProblem::objective(const ga::Chromosome& c) const {
  return eval_.makespan(codec_.decode(c));
}

void ScheduleProblem::improve(ga::Chromosome& c, util::Rng& rng) const {
  rebalance_once(c, codec_, eval_, rng, probes_);
}

}  // namespace gasched::core
