#include "core/fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rebalance.hpp"

namespace gasched::core {

ScheduleEvaluator::ScheduleEvaluator(std::vector<double> task_sizes,
                                     const sim::SystemView& view,
                                     bool use_comm)
    : size_(std::move(task_sizes)) {
  if (view.procs.empty()) {
    throw std::invalid_argument("ScheduleEvaluator: empty system view");
  }
  rate_.reserve(view.size());
  delta_.reserve(view.size());
  comm_.reserve(view.size());
  double total_rate = 0.0;
  double sum_delta = 0.0;
  for (const auto& p : view.procs) {
    if (!(p.rate > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive rate");
    }
    rate_.push_back(p.rate);
    const double d = p.pending_mflops / p.rate;
    delta_.push_back(d);
    sum_delta += d;
    comm_.push_back(use_comm ? p.comm_estimate : 0.0);
    total_rate += p.rate;
  }
  double total_work = 0.0;
  for (const double t : size_) {
    if (!(t > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive task size");
    }
    total_work += t;
  }
  // ψ = Σ_i t_i / Σ_j P_j + Σ_j δ_j  (paper §3.2).
  psi_ = total_work / total_rate + sum_delta;

  // Per-(processor, slot) cost table: the division and comm add are
  // loop-invariant per processor, so hoist them out of every pricing loop
  // once here. Each entry is the exact double the defining expression
  // produces, so table-served pricing is bit-identical to the original
  // per-slot arithmetic.
  const std::size_t N = size_.size();
  cost_.resize(N * rate_.size());
  for (std::size_t j = 0; j < rate_.size(); ++j) {
    double* row = cost_.data() + j * N;
    const double rate = rate_[j];
    const double comm = comm_[j];
    for (std::size_t slot = 0; slot < N; ++slot) {
      row[slot] = size_[slot] / rate + comm;
    }
  }
}

double ScheduleEvaluator::completion_time(
    std::size_t j, std::span<const std::size_t> queue) const {
  double c = delta_[j];
  const double* cost = cost_.data() + j * size_.size();
  for (const std::size_t slot : queue) {
    c += cost[slot];
  }
  return c;
}

double ScheduleEvaluator::completion_time_bulk(
    std::size_t j, std::span<const std::size_t> queue) const {
  double sum = 0.0;
  for (const std::size_t slot : queue) {
    sum += size_[slot];
  }
  return delta_[j] + sum / rate_[j] +
         static_cast<double>(queue.size()) * comm_[j];
}

double ScheduleEvaluator::makespan(const FlatSchedule& schedule) const {
  double m = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    m = std::max(m, completion_time(j, schedule.queue(j)));
  }
  return m;
}

double ScheduleEvaluator::makespan(const ProcQueues& queues) const {
  double m = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    m = std::max(m, completion_time(j, queues[j]));
  }
  return m;
}

double ScheduleEvaluator::relative_error(const FlatSchedule& schedule) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double dev = psi_ - completion_time(j, schedule.queue(j));
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

double ScheduleEvaluator::relative_error(const ProcQueues& queues) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    const double dev = psi_ - completion_time(j, queues[j]);
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

namespace {

double fitness_of_error(double e) {
  if (e <= 1.0) return 1.0;  // F = 1/E clamped into [0, 1]
  return 1.0 / e;
}

}  // namespace

double ScheduleEvaluator::fitness(const FlatSchedule& schedule) const {
  return fitness_of_error(relative_error(schedule));
}

double ScheduleEvaluator::fitness(const ProcQueues& queues) const {
  return fitness_of_error(relative_error(queues));
}

BatchEvaluation ScheduleEvaluator::evaluate(
    const FlatSchedule& schedule) const {
  double m = 0.0;
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double cj = completion_time(j, schedule.queue(j));
    m = std::max(m, cj);
    const double dev = psi_ - cj;
    sum_sq += dev * dev;
  }
  const double e = std::sqrt(sum_sq);
  return {fitness_of_error(e), m, e};
}

BatchEvaluation ScheduleEvaluator::reduce(QueueLoads& loads) const {
  // The reductions are always reassembled in ascending j from the cached
  // per-queue values — never adjusted incrementally — so a delta re-price
  // reduces the exact same doubles in the exact same order as a full
  // pricing: bit-identical sum_sq, makespan, and first-argmax.
  double m = 0.0;
  double sum_sq = 0.0;
  std::size_t heavy = 0;
  double heavy_time = -1.0;
  for (std::size_t j = 0; j < loads.completion.size(); ++j) {
    const double cj = loads.completion[j];
    m = std::max(m, cj);
    sum_sq += loads.dev_sq[j];
    if (cj > heavy_time) {
      heavy_time = cj;
      heavy = j;
    }
  }
  loads.sum_sq = sum_sq;
  loads.max_completion = m;
  loads.heaviest = heavy;
  const double e = std::sqrt(sum_sq);
  loads.eval = {fitness_of_error(e), m, e};
  return loads.eval;
}

void ScheduleEvaluator::reprice_queue(const FlatSchedule& schedule,
                                      QueueLoads& loads,
                                      std::size_t j) const {
  const double cj = completion_time(j, schedule.queue(j));
  loads.completion[j] = cj;
  const double dev = psi_ - cj;
  loads.dev_sq[j] = dev * dev;
}

BatchEvaluation ScheduleEvaluator::load(const FlatSchedule& schedule,
                                        QueueLoads& out) const {
  const std::size_t M = schedule.num_procs();
  out.completion.resize(M);
  out.dev_sq.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    reprice_queue(schedule, out, j);
  }
  return reduce(out);
}

BatchEvaluation ScheduleEvaluator::load_decoded(const ScheduleCodec& codec,
                                                const ga::Chromosome& c,
                                                FlatSchedule& schedule,
                                                QueueLoads& out) const {
  // Mirror of ScheduleCodec::decode_into with the pricing fused into the
  // walk: as each slot lands in its queue its cost is added to that
  // queue's running C_j — the same left-to-right, queue-order summation
  // completion_time() performs, so the result is bit-identical to
  // decode_into + load at half the passes over the chromosome.
  const std::size_t M = codec.num_procs();
  const std::size_t N = size_.size();
  schedule.slots_.clear();
  schedule.slots_.reserve(codec.num_tasks());
  schedule.offsets_.resize(M + 1);
  schedule.offsets_[0] = 0;
  out.completion.resize(M);
  out.dev_sq.resize(M);
  for (std::size_t j = 0; j < M; ++j) out.completion[j] = delta_[j];
  std::size_t proc = 0;
  for (const ga::Gene g : c) {
    if (ScheduleCodec::is_delimiter(g)) {
      ++proc;
      if (proc >= M) {
        throw std::invalid_argument(
            "ScheduleCodec::decode: too many delimiters");
      }
      schedule.offsets_[proc] = schedule.slots_.size();
    } else {
      const std::size_t slot = ScheduleCodec::task_slot(g);
      schedule.slots_.push_back(slot);
      out.completion[proc] += cost_[proc * N + slot];
    }
  }
  for (std::size_t j = proc + 1; j <= M; ++j) {
    schedule.offsets_[j] = schedule.slots_.size();
  }
  for (std::size_t j = 0; j < M; ++j) {
    const double dev = psi_ - out.completion[j];
    out.dev_sq[j] = dev * dev;
  }
  return reduce(out);
}

BatchEvaluation ScheduleEvaluator::evaluate_swap(const FlatSchedule& schedule,
                                                 QueueLoads& loads,
                                                 std::size_t qa,
                                                 std::size_t qb) const {
  reprice_queue(schedule, loads, qa);
  if (qb != qa) reprice_queue(schedule, loads, qb);
  return reduce(loads);
}

BatchEvaluation ScheduleEvaluator::evaluate_move(const FlatSchedule& schedule,
                                                 QueueLoads& loads,
                                                 std::size_t from,
                                                 std::size_t to) const {
  return evaluate_swap(schedule, loads, from, to);
}

ScheduleProblem::ScheduleProblem(const ScheduleCodec& codec,
                                 const ScheduleEvaluator& eval,
                                 std::size_t rebalance_probes)
    : codec_(codec), eval_(eval), probes_(rebalance_probes) {}

double ScheduleProblem::fitness(const ga::Chromosome& c) const {
  return eval_.fitness(codec_.decode(c));
}

double ScheduleProblem::objective(const ga::Chromosome& c) const {
  return eval_.makespan(codec_.decode(c));
}

ga::GaProblem::Evaluation ScheduleProblem::evaluate(const ga::Chromosome& c,
                                                    Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return evaluate(c, &local);
  }
  auto& w = static_cast<EvalWorkspace&>(*ws);
  const BatchEvaluation e =
      eval_.load_decoded(codec_, c, w.schedule, w.loads);
  return {e.fitness, e.makespan};
}

std::unique_ptr<ga::GaProblem::Workspace> ScheduleProblem::make_workspace()
    const {
  return std::make_unique<EvalWorkspace>();
}

bool ScheduleProblem::improve(ga::Chromosome& c, util::Rng& rng,
                              Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return rebalance_once(c, codec_, eval_, rng, probes_, local);
  }
  return rebalance_once(c, codec_, eval_, rng, probes_,
                        static_cast<EvalWorkspace&>(*ws));
}

}  // namespace gasched::core
