#include "core/fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rebalance.hpp"

namespace gasched::core {

ScheduleEvaluator::ScheduleEvaluator(std::vector<double> task_sizes,
                                     const sim::SystemView& view,
                                     bool use_comm)
    : size_(std::move(task_sizes)) {
  if (view.procs.empty()) {
    throw std::invalid_argument("ScheduleEvaluator: empty system view");
  }
  rate_.reserve(view.size());
  delta_.reserve(view.size());
  comm_.reserve(view.size());
  double total_rate = 0.0;
  double sum_delta = 0.0;
  for (const auto& p : view.procs) {
    if (!(p.rate > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive rate");
    }
    rate_.push_back(p.rate);
    const double d = p.pending_mflops / p.rate;
    delta_.push_back(d);
    sum_delta += d;
    comm_.push_back(use_comm ? p.comm_estimate : 0.0);
    total_rate += p.rate;
  }
  double total_work = 0.0;
  for (const double t : size_) {
    if (!(t > 0.0)) {
      throw std::invalid_argument("ScheduleEvaluator: non-positive task size");
    }
    total_work += t;
  }
  // ψ = Σ_i t_i / Σ_j P_j + Σ_j δ_j  (paper §3.2).
  psi_ = total_work / total_rate + sum_delta;
}

double ScheduleEvaluator::completion_time(
    std::size_t j, std::span<const std::size_t> queue) const {
  double c = delta_[j];
  for (const std::size_t slot : queue) {
    c += size_[slot] / rate_[j] + comm_[j];
  }
  return c;
}

double ScheduleEvaluator::makespan(const FlatSchedule& schedule) const {
  double m = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    m = std::max(m, completion_time(j, schedule.queue(j)));
  }
  return m;
}

double ScheduleEvaluator::makespan(const ProcQueues& queues) const {
  double m = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    m = std::max(m, completion_time(j, queues[j]));
  }
  return m;
}

double ScheduleEvaluator::relative_error(const FlatSchedule& schedule) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double dev = psi_ - completion_time(j, schedule.queue(j));
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

double ScheduleEvaluator::relative_error(const ProcQueues& queues) const {
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < queues.size(); ++j) {
    const double dev = psi_ - completion_time(j, queues[j]);
    sum_sq += dev * dev;
  }
  return std::sqrt(sum_sq);
}

namespace {

double fitness_of_error(double e) {
  if (e <= 1.0) return 1.0;  // F = 1/E clamped into [0, 1]
  return 1.0 / e;
}

}  // namespace

double ScheduleEvaluator::fitness(const FlatSchedule& schedule) const {
  return fitness_of_error(relative_error(schedule));
}

double ScheduleEvaluator::fitness(const ProcQueues& queues) const {
  return fitness_of_error(relative_error(queues));
}

BatchEvaluation ScheduleEvaluator::evaluate(
    const FlatSchedule& schedule) const {
  double m = 0.0;
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < schedule.num_procs(); ++j) {
    const double cj = completion_time(j, schedule.queue(j));
    m = std::max(m, cj);
    const double dev = psi_ - cj;
    sum_sq += dev * dev;
  }
  const double e = std::sqrt(sum_sq);
  return {fitness_of_error(e), m, e};
}

ScheduleProblem::ScheduleProblem(const ScheduleCodec& codec,
                                 const ScheduleEvaluator& eval,
                                 std::size_t rebalance_probes)
    : codec_(codec), eval_(eval), probes_(rebalance_probes) {}

double ScheduleProblem::fitness(const ga::Chromosome& c) const {
  return eval_.fitness(codec_.decode(c));
}

double ScheduleProblem::objective(const ga::Chromosome& c) const {
  return eval_.makespan(codec_.decode(c));
}

ga::GaProblem::Evaluation ScheduleProblem::evaluate(const ga::Chromosome& c,
                                                    Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return evaluate(c, &local);
  }
  auto& w = static_cast<EvalWorkspace&>(*ws);
  codec_.decode_into(c, w.schedule);
  const BatchEvaluation e = eval_.evaluate(w.schedule);
  return {e.fitness, e.makespan};
}

std::unique_ptr<ga::GaProblem::Workspace> ScheduleProblem::make_workspace()
    const {
  return std::make_unique<EvalWorkspace>();
}

bool ScheduleProblem::improve(ga::Chromosome& c, util::Rng& rng,
                              Workspace* ws) const {
  if (ws == nullptr) {
    EvalWorkspace local;
    return rebalance_once(c, codec_, eval_, rng, probes_, local);
  }
  return rebalance_once(c, codec_, eval_, rng, probes_,
                        static_cast<EvalWorkspace&>(*ws));
}

}  // namespace gasched::core
