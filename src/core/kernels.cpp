#include "core/kernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GASCHED_KERNELS_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define GASCHED_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace gasched::core::kernels {

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

// --- scalar fallback (4 accumulators, fixed lane combine) -------------------

namespace {

double sum_gather_scalar(const double* v, const std::size_t* idx,
                         std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    a0 += v[idx[k]];
    a1 += v[idx[k + 1]];
    a2 += v[idx[k + 2]];
    a3 += v[idx[k + 3]];
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; k < n; ++k) s += v[idx[k]];
  return s;
}

double sum_range_scalar(const double* v, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    a0 += v[k];
    a1 += v[k + 1];
    a2 += v[k + 2];
    a3 += v[k + 3];
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; k < n; ++k) s += v[k];
  return s;
}

Reduction reduce_deviation_scalar(const double* c, std::size_t m,
                                  double psi) {
  Reduction r;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    const double d0 = psi - c[k];
    const double d1 = psi - c[k + 1];
    const double d2 = psi - c[k + 2];
    const double d3 = psi - c[k + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
    r.max = std::max(
        r.max, std::max(std::max(c[k], c[k + 1]), std::max(c[k + 2], c[k + 3])));
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; k < m; ++k) {
    const double d = psi - c[k];
    s += d * d;
    r.max = std::max(r.max, c[k]);
  }
  r.sum_sq = s;
  for (std::size_t j = 0; j < m; ++j) {
    if (c[j] == r.max) {
      r.argmax = j;
      break;
    }
  }
  return r;
}

// --- AVX2 variants ----------------------------------------------------------

#if GASCHED_KERNELS_AVX2

__attribute__((target("avx2,fma"))) double sum_gather_avx2(
    const double* v, const std::size_t* idx, std::size_t n) {
  // Manual gather: scalar loads packed with _mm256_set_pd instead of
  // _mm256_i64gather_pd — the hardware gather measured *slower* than
  // scalar loads here (it microcodes to the same loads plus overhead on
  // most cores), while manual packing keeps the load ports saturated and
  // the adds vectorized. Lane i still holds v[idx[k+i]], so results are
  // bit-identical to the hardware-gather formulation.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256d g0 = _mm256_set_pd(v[idx[k + 3]], v[idx[k + 2]],
                                     v[idx[k + 1]], v[idx[k + 0]]);
    const __m256d g1 = _mm256_set_pd(v[idx[k + 7]], v[idx[k + 6]],
                                     v[idx[k + 5]], v[idx[k + 4]]);
    acc0 = _mm256_add_pd(acc0, g0);
    acc1 = _mm256_add_pd(acc1, g1);
  }
  if (k + 4 <= n) {
    acc0 = _mm256_add_pd(acc0, _mm256_set_pd(v[idx[k + 3]], v[idx[k + 2]],
                                             v[idx[k + 1]], v[idx[k + 0]]));
    k += 4;
  }
  double lane[4];
  _mm256_storeu_pd(lane, _mm256_add_pd(acc0, acc1));
  double s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; k < n; ++k) s += v[idx[k]];
  return s;
}

__attribute__((target("avx2,fma"))) double sum_range_avx2(const double* v,
                                                          std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + k));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(v + k + 4));
  }
  if (k + 4 <= n) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + k));
    k += 4;
  }
  double lane[4];
  _mm256_storeu_pd(lane, _mm256_add_pd(acc0, acc1));
  double s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; k < n; ++k) s += v[k];
  return s;
}

__attribute__((target("avx2,fma"))) Reduction reduce_deviation_avx2(
    const double* c, std::size_t m, double psi) {
  Reduction r;
  const __m256d vpsi = _mm256_set1_pd(psi);
  __m256d acc = _mm256_setzero_pd();
  __m256d vmax = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    const __m256d vc = _mm256_loadu_pd(c + k);
    const __m256d dev = _mm256_sub_pd(vpsi, vc);
    acc = _mm256_fmadd_pd(dev, dev, acc);
    vmax = _mm256_max_pd(vmax, vc);
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  _mm256_storeu_pd(lane, vmax);
  double mx = std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  for (; k < m; ++k) {
    const double d = psi - c[k];
    s += d * d;
    mx = std::max(mx, c[k]);
  }
  r.sum_sq = s;
  r.max = mx;
  for (std::size_t j = 0; j < m; ++j) {
    if (c[j] == r.max) {
      r.argmax = j;
      break;
    }
  }
  return r;
}

bool runtime_avx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // GASCHED_KERNELS_AVX2

// --- NEON variants ----------------------------------------------------------

#if GASCHED_KERNELS_NEON

double sum_gather_neon(const double* v, const std::size_t* idx,
                       std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float64x2_t g0 = {v[idx[k]], v[idx[k + 1]]};
    const float64x2_t g1 = {v[idx[k + 2]], v[idx[k + 3]]};
    acc0 = vaddq_f64(acc0, g0);
    acc1 = vaddq_f64(acc1, g1);
  }
  double s = (vgetq_lane_f64(acc0, 0) + vgetq_lane_f64(acc0, 1)) +
             (vgetq_lane_f64(acc1, 0) + vgetq_lane_f64(acc1, 1));
  for (; k < n; ++k) s += v[idx[k]];
  return s;
}

double sum_range_neon(const double* v, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(v + k));
    acc1 = vaddq_f64(acc1, vld1q_f64(v + k + 2));
  }
  double s = (vgetq_lane_f64(acc0, 0) + vgetq_lane_f64(acc0, 1)) +
             (vgetq_lane_f64(acc1, 0) + vgetq_lane_f64(acc1, 1));
  for (; k < n; ++k) s += v[k];
  return s;
}

Reduction reduce_deviation_neon(const double* c, std::size_t m, double psi) {
  Reduction r;
  const float64x2_t vpsi = vdupq_n_f64(psi);
  float64x2_t acc = vdupq_n_f64(0.0);
  float64x2_t vmax = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 2 <= m; k += 2) {
    const float64x2_t vc = vld1q_f64(c + k);
    const float64x2_t dev = vsubq_f64(vpsi, vc);
    acc = vfmaq_f64(acc, dev, dev);
    vmax = vmaxq_f64(vmax, vc);
  }
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  double mx = std::max(vgetq_lane_f64(vmax, 0), vgetq_lane_f64(vmax, 1));
  for (; k < m; ++k) {
    const double d = psi - c[k];
    s += d * d;
    mx = std::max(mx, c[k]);
  }
  r.sum_sq = s;
  r.max = mx;
  for (std::size_t j = 0; j < m; ++j) {
    if (c[j] == r.max) {
      r.argmax = j;
      break;
    }
  }
  return r;
}

#endif  // GASCHED_KERNELS_NEON

Isa detect_isa() {
  if (const char* env = std::getenv("GASCHED_KERNEL_ISA");
      env != nullptr && *env != '\0') {
    Isa want;
    if (std::strcmp(env, "scalar") == 0) {
      want = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Isa::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      want = Isa::kNeon;
    } else {
      throw std::runtime_error(
          std::string("GASCHED_KERNEL_ISA='") + env +
          "' is not a kernel ISA (valid: scalar, avx2, neon)");
    }
    if (!supported(want)) {
      throw std::runtime_error(std::string("GASCHED_KERNEL_ISA='") + env +
                               "' is not supported on this build/CPU");
    }
    return want;
  }
#if GASCHED_KERNELS_AVX2
  if (runtime_avx2()) return Isa::kAvx2;
#endif
#if GASCHED_KERNELS_NEON
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

}  // namespace

CpuFeatures cpu_features() noexcept {
  CpuFeatures f;
#if GASCHED_KERNELS_AVX2
  f.compiled_avx2 = true;
  f.runtime_avx2 = runtime_avx2();
#endif
#if GASCHED_KERNELS_NEON
  f.compiled_neon = true;
  f.runtime_neon = true;
#endif
#if defined(GASCHED_NATIVE_BUILD)
  f.native_build = true;
#endif
  return f;
}

bool supported(Isa isa) noexcept {
  const CpuFeatures f = cpu_features();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return f.compiled_avx2 && f.runtime_avx2;
    case Isa::kNeon:
      return f.compiled_neon && f.runtime_neon;
  }
  return false;
}

Isa active_isa() {
  static const Isa isa = detect_isa();
  return isa;
}

double sum_gather_isa(Isa isa, const double* values, const std::size_t* idx,
                      std::size_t n) {
  switch (isa) {
#if GASCHED_KERNELS_AVX2
    case Isa::kAvx2:
      return sum_gather_avx2(values, idx, n);
#endif
#if GASCHED_KERNELS_NEON
    case Isa::kNeon:
      return sum_gather_neon(values, idx, n);
#endif
    default:
      return sum_gather_scalar(values, idx, n);
  }
}

double sum_range_isa(Isa isa, const double* values, std::size_t n) {
  switch (isa) {
#if GASCHED_KERNELS_AVX2
    case Isa::kAvx2:
      return sum_range_avx2(values, n);
#endif
#if GASCHED_KERNELS_NEON
    case Isa::kNeon:
      return sum_range_neon(values, n);
#endif
    default:
      return sum_range_scalar(values, n);
  }
}

Reduction reduce_deviation_isa(Isa isa, const double* completion,
                               std::size_t m, double psi) {
  switch (isa) {
#if GASCHED_KERNELS_AVX2
    case Isa::kAvx2:
      return reduce_deviation_avx2(completion, m, psi);
#endif
#if GASCHED_KERNELS_NEON
    case Isa::kNeon:
      return reduce_deviation_neon(completion, m, psi);
#endif
    default:
      return reduce_deviation_scalar(completion, m, psi);
  }
}

double sum_gather(const double* values, const std::size_t* idx,
                  std::size_t n) {
  return sum_gather_isa(active_isa(), values, idx, n);
}

SumGatherFn sum_gather_fn() {
  switch (active_isa()) {
#if GASCHED_KERNELS_AVX2
    case Isa::kAvx2:
      return &sum_gather_avx2;
#endif
#if GASCHED_KERNELS_NEON
    case Isa::kNeon:
      return &sum_gather_neon;
#endif
    default:
      return &sum_gather_scalar;
  }
}

double sum_range(const double* values, std::size_t n) {
  return sum_range_isa(active_isa(), values, n);
}

Reduction reduce_deviation(const double* completion, std::size_t m,
                           double psi) {
  return reduce_deviation_isa(active_isa(), completion, m, psi);
}

}  // namespace gasched::core::kernels
