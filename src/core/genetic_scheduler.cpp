#include "core/genetic_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "ga/island.hpp"

namespace gasched::core {

GeneticBatchScheduler::GeneticBatchScheduler(GeneticSchedulerConfig cfg,
                                             std::string display_name)
    : cfg_(std::move(cfg)),
      name_(std::move(display_name)),
      idle_smoother_(cfg_.batch_nu) {}

std::size_t GeneticBatchScheduler::next_batch_size(
    const sim::SystemView& view) {
  if (!cfg_.dynamic_batch) return cfg_.fixed_batch;
  // s_p: estimated time until the first processor becomes idle (§3.7).
  double s = std::numeric_limits<double>::infinity();
  for (const auto& p : view.procs) s = std::min(s, p.drain_time());
  if (!std::isfinite(s)) s = 0.0;
  const double gamma = idle_smoother_.observe(s);
  const auto h = static_cast<std::size_t>(std::floor(std::sqrt(gamma + 1.0)));
  const std::size_t lo =
      cfg_.min_batch > 0 ? cfg_.min_batch : std::max<std::size_t>(view.size(), 1);
  return std::clamp(h, lo, cfg_.max_batch);
}

sim::BatchAssignment GeneticBatchScheduler::invoke(
    const sim::SystemView& view, std::deque<workload::Task>& queue,
    util::Rng& rng) {
  const std::size_t M = view.size();
  sim::BatchAssignment assignment = sim::BatchAssignment::empty(M);
  if (queue.empty() || M == 0) return assignment;

  const std::size_t batch =
      std::min<std::size_t>(next_batch_size(view), queue.size());

  // Consume the batch from the front of the unscheduled queue (FCFS).
  std::vector<workload::Task> tasks;
  tasks.reserve(batch);
  std::vector<double> sizes;
  sizes.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    tasks.push_back(queue.front());
    sizes.push_back(queue.front().size_mflops);
    queue.pop_front();
  }

  const ScheduleCodec codec(batch, M);
  const ScheduleEvaluator eval(std::move(sizes), view,
                               cfg_.use_comm_estimates, cfg_.ga.numeric_mode);
  ScheduleProblem problem(codec, eval, cfg_.rebalance_probes);

  ga::GaConfig ga_cfg = cfg_.ga;
  if (!cfg_.rebalance) ga_cfg.improvement_passes = 0;

  static const ga::RouletteSelection kSelection;
  static const ga::CycleCrossover kCrossover;
  static const ga::SwapMutation kMutation;
  const ga::GaEngine engine(ga_cfg, kSelection, kCrossover, kMutation);

  auto initial = initial_population(codec, eval, ga_cfg.population,
                                    cfg_.random_init_fraction, rng);
  ga::StopPredicate stop;
  if (cfg_.max_wall_seconds > 0.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(cfg_.max_wall_seconds);
    stop = [deadline](std::size_t, double) {
      return std::chrono::steady_clock::now() >= deadline;
    };
  }
  ga::Chromosome best;
  if (cfg_.islands > 1) {
    ga::IslandConfig island_cfg;
    island_cfg.ga = ga_cfg;
    island_cfg.islands = cfg_.islands;
    island_cfg.migration_interval = cfg_.migration_interval;
    island_cfg.migrants = cfg_.migrants;
    island_cfg.parallel = cfg_.island_parallel;
    // Seed every island's worth of individuals up front so islands start
    // decorrelated.
    initial = initial_population(codec, eval,
                                 ga_cfg.population * cfg_.islands,
                                 cfg_.random_init_fraction, rng);
    const ga::IslandResult result =
        ga::run_island_ga(problem, island_cfg, kSelection, kCrossover,
                          kMutation, std::move(initial), rng, stop);
    best = result.best.best;
  } else {
    const ga::GaResult result =
        engine.run(problem, std::move(initial), rng, stop);
    best = result.best;
  }

  codec.decode_into(best, decode_scratch_.schedule);
  for (std::size_t j = 0; j < M; ++j) {
    for (const std::size_t slot : decode_scratch_.schedule.queue(j)) {
      assignment.per_proc[j].push_back(tasks[slot].id);
    }
  }
  return assignment;
}

std::unique_ptr<GeneticBatchScheduler> make_pn_scheduler(
    GeneticSchedulerConfig cfg) {
  cfg.use_comm_estimates = true;
  cfg.rebalance = true;
  return std::make_unique<GeneticBatchScheduler>(cfg, "PN");
}

std::unique_ptr<GeneticBatchScheduler> make_pn_island_scheduler(
    std::size_t islands, GeneticSchedulerConfig cfg) {
  cfg.use_comm_estimates = true;
  cfg.rebalance = true;
  cfg.islands = islands;
  return std::make_unique<GeneticBatchScheduler>(cfg, "PNI");
}

std::unique_ptr<GeneticBatchScheduler> make_zo_scheduler(
    std::size_t fixed_batch) {
  GeneticSchedulerConfig cfg;
  cfg.use_comm_estimates = false;
  cfg.rebalance = false;
  cfg.dynamic_batch = false;
  cfg.fixed_batch = fixed_batch;
  return std::make_unique<GeneticBatchScheduler>(cfg, "ZO");
}

}  // namespace gasched::core
