#pragma once
// Schedule encoding (paper §3.1, Fig 2).
//
// Each individual represents one schedule for a batch of H tasks on M
// processors: a string of H + M − 1 symbols where task symbols are batch
// slots and M − 1 delimiter symbols split the string into per-processor
// queues (the segment before delimiter k is processor k's queue).
//
// Deviation from the paper (documented in DESIGN.md): the paper writes
// every delimiter as −1, but cycle crossover needs distinct symbols, so
// delimiter k is encoded as −(k+1). Any negative symbol still decodes as
// "next processor", which preserves the paper's semantics exactly.

#include <cstddef>
#include <vector>

#include "ga/chromosome.hpp"

namespace gasched::core {

/// Per-processor ordered queues of batch slots (0-based indices into the
/// batch's task array).
using ProcQueues = std::vector<std::vector<std::size_t>>;

/// Translates between chromosomes and per-processor queues for a batch of
/// `num_tasks` tasks on `num_procs` processors.
class ScheduleCodec {
 public:
  /// Requires num_procs >= 1.
  ScheduleCodec(std::size_t num_tasks, std::size_t num_procs);

  /// Chromosome length: H + M − 1.
  std::size_t chromosome_length() const noexcept {
    return num_tasks_ + num_procs_ - 1;
  }
  /// Number of tasks H in the batch.
  std::size_t num_tasks() const noexcept { return num_tasks_; }
  /// Number of processors M.
  std::size_t num_procs() const noexcept { return num_procs_; }

  /// True when `g` is a queue delimiter.
  static bool is_delimiter(ga::Gene g) noexcept { return g < 0; }

  /// Gene for batch slot `slot` (identity mapping, slot < num_tasks).
  static ga::Gene task_gene(std::size_t slot) noexcept {
    return static_cast<ga::Gene>(slot);
  }
  /// Batch slot of a task gene.
  static std::size_t task_slot(ga::Gene g) noexcept {
    return static_cast<std::size_t>(g);
  }
  /// Gene for delimiter `k` (k in [0, M−1)): −(k+1).
  static ga::Gene delimiter_gene(std::size_t k) noexcept {
    return -static_cast<ga::Gene>(k) - 1;
  }

  /// Encodes per-processor queues into a chromosome. `queues` must have
  /// exactly num_procs entries covering every batch slot exactly once.
  ga::Chromosome encode(const ProcQueues& queues) const;

  /// Decodes a chromosome into per-processor queues. The k-th delimiter
  /// *position* (not value) ends processor k's queue, matching the paper's
  /// "-1 delimits different processor queues" reading.
  ProcQueues decode(const ga::Chromosome& c) const;

  /// Validates that `c` is a permutation of the expected symbol set.
  bool valid(const ga::Chromosome& c) const;

 private:
  std::size_t num_tasks_;
  std::size_t num_procs_;
};

}  // namespace gasched::core
