#pragma once
// Schedule encoding (paper §3.1, Fig 2).
//
// Each individual represents one schedule for a batch of H tasks on M
// processors: a string of H + M − 1 symbols where task symbols are batch
// slots and M − 1 delimiter symbols split the string into per-processor
// queues (the segment before delimiter k is processor k's queue).
//
// Deviation from the paper (documented in DESIGN.md): the paper writes
// every delimiter as −1, but cycle crossover needs distinct symbols, so
// delimiter k is encoded as −(k+1). Any negative symbol still decodes as
// "next processor", which preserves the paper's semantics exactly.

#include <cstddef>
#include <span>
#include <vector>

#include "ga/chromosome.hpp"

namespace gasched::core {

/// Per-processor ordered queues of batch slots (0-based indices into the
/// batch's task array).
using ProcQueues = std::vector<std::vector<std::size_t>>;

/// Flat decoded schedule: every batch slot in one contiguous array,
/// grouped by processor, plus M+1 queue offsets. This is the
/// zero-allocation decode target of the evaluation core — decoding into a
/// reused FlatSchedule touches no heap once its buffers have grown to the
/// batch size, unlike ProcQueues (one vector per processor per decode).
/// Queue order is significant: it is the dispatch order of the schedule.
class FlatSchedule {
 public:
  /// Number of processors M (0 for a default-constructed schedule).
  std::size_t num_procs() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of batch slots N across all queues.
  std::size_t num_slots() const noexcept { return slots_.size(); }

  /// Ordered queue of processor `j` (a view into the slot array).
  std::span<const std::size_t> queue(std::size_t j) const noexcept {
    return {slots_.data() + offsets_[j], offsets_[j + 1] - offsets_[j]};
  }
  /// Mutable queue view (for in-place slot swaps; the grouping itself —
  /// which slot belongs to which processor — may be changed freely as
  /// long as every slot stays unique).
  std::span<std::size_t> queue(std::size_t j) noexcept {
    return {slots_.data() + offsets_[j], offsets_[j + 1] - offsets_[j]};
  }

  /// All slots in processor-grouped order.
  std::span<const std::size_t> slots() const noexcept { return slots_; }

  /// Rebuilds from per-processor queues (adapter for the legacy path).
  void assign(const ProcQueues& queues);
  /// Materialises per-processor queues (adapter for the legacy path).
  ProcQueues to_queues() const;

  /// Rebuilds from a slot → processor map; slots are placed in ascending
  /// slot order within each queue (matching meta::LoadTracker::to_queues).
  void assign_grouped(std::span<const std::size_t> slot_proc,
                      std::size_t num_procs);
  /// Rebuilds from a slot → processor map, placing slots in the order
  /// given by `order` (a permutation of the slots) within each queue.
  void assign_ordered(std::span<const std::size_t> order,
                      std::span<const std::size_t> slot_proc,
                      std::size_t num_procs);

  bool operator==(const FlatSchedule& other) const noexcept {
    return slots_ == other.slots_ && offsets_ == other.offsets_;
  }

 private:
  friend class ScheduleCodec;
  friend class ScheduleEvaluator;  // fused decode+price (fitness.cpp)

  std::vector<std::size_t> slots_;    // N slots, grouped by processor
  std::vector<std::size_t> offsets_;  // M+1 offsets, offsets_[0] == 0
  std::vector<std::size_t> cursor_;   // scratch for the bucket builders
};

/// Translates between chromosomes and per-processor queues for a batch of
/// `num_tasks` tasks on `num_procs` processors.
class ScheduleCodec {
 public:
  /// Requires num_procs >= 1.
  ScheduleCodec(std::size_t num_tasks, std::size_t num_procs);

  /// Chromosome length: H + M − 1.
  std::size_t chromosome_length() const noexcept {
    return num_tasks_ + num_procs_ - 1;
  }
  /// Number of tasks H in the batch.
  std::size_t num_tasks() const noexcept { return num_tasks_; }
  /// Number of processors M.
  std::size_t num_procs() const noexcept { return num_procs_; }

  /// True when `g` is a queue delimiter.
  static bool is_delimiter(ga::Gene g) noexcept { return g < 0; }

  /// Gene for batch slot `slot` (identity mapping, slot < num_tasks).
  static ga::Gene task_gene(std::size_t slot) noexcept {
    return static_cast<ga::Gene>(slot);
  }
  /// Batch slot of a task gene.
  static std::size_t task_slot(ga::Gene g) noexcept {
    return static_cast<std::size_t>(g);
  }
  /// Gene for delimiter `k` (k in [0, M−1)): −(k+1).
  static ga::Gene delimiter_gene(std::size_t k) noexcept {
    return -static_cast<ga::Gene>(k) - 1;
  }

  /// Encodes per-processor queues into a chromosome. `queues` must have
  /// exactly num_procs entries covering every batch slot exactly once.
  ga::Chromosome encode(const ProcQueues& queues) const;

  /// Encodes a flat schedule into a chromosome (same validation rules).
  ga::Chromosome encode(const FlatSchedule& schedule) const;

  /// Decodes a chromosome into per-processor queues. The k-th delimiter
  /// *position* (not value) ends processor k's queue, matching the paper's
  /// "-1 delimits different processor queues" reading.
  ProcQueues decode(const ga::Chromosome& c) const;

  /// Decodes into a caller-owned flat schedule, reusing its buffers:
  /// allocation-free once `out` has reached the batch size. Produces the
  /// same queues (content and order) as decode().
  void decode_into(const ga::Chromosome& c, FlatSchedule& out) const;

  /// Validates that `c` is a permutation of the expected symbol set.
  bool valid(const ga::Chromosome& c) const;

 private:
  std::size_t num_tasks_;
  std::size_t num_procs_;
};

}  // namespace gasched::core
