#include "core/numeric.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gasched::core {

const char* numeric_mode_name(NumericMode mode) noexcept {
  return mode == NumericMode::kFast ? "fast" : "exact";
}

NumericMode parse_numeric_mode(const std::string& name) {
  if (name == "exact") return NumericMode::kExact;
  if (name == "fast") return NumericMode::kFast;
  throw std::runtime_error("unknown numeric mode '" + name +
                           "' (valid: exact, fast)");
}

namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_default_mode{-1};

int mode_from_env() {
  const char* env = std::getenv("GASCHED_NUMERIC_MODE");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(NumericMode::kExact);
  }
  const std::string name(env);
  if (name == "exact") return static_cast<int>(NumericMode::kExact);
  if (name == "fast") return static_cast<int>(NumericMode::kFast);
  std::fprintf(stderr,
               "gasched: ignoring GASCHED_NUMERIC_MODE='%s' "
               "(valid: exact, fast)\n",
               env);
  return static_cast<int>(NumericMode::kExact);
}

}  // namespace

NumericMode default_numeric_mode() noexcept {
  int m = g_default_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    int from_env = mode_from_env();
    // First writer wins so a concurrent set_default_numeric_mode() is
    // never clobbered by a late environment read.
    g_default_mode.compare_exchange_strong(m, from_env,
                                           std::memory_order_relaxed);
    m = g_default_mode.load(std::memory_order_relaxed);
  }
  return static_cast<NumericMode>(m);
}

void set_default_numeric_mode(NumericMode mode) noexcept {
  g_default_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

double metric_deviation(double fast, double exact, double scale) noexcept {
  const double diff = std::abs(fast - exact);
  const double denom =
      std::max({std::abs(fast), std::abs(exact), std::abs(scale)});
  return denom > 0.0 ? diff / denom : 0.0;
}

ToleranceAudit::ToleranceAudit() : cfg_(global().config()) {}

ToleranceAudit::ToleranceAudit(AuditConfig cfg) : cfg_(cfg) {}

void ToleranceAudit::configure(AuditConfig cfg) { cfg_ = cfg; }

void ToleranceAudit::record(double deviation) {
  samples_.fetch_add(1, std::memory_order_relaxed);
  // Monotone CAS-max on the bit pattern: for non-negative doubles the
  // integer order matches the floating-point order.
  const std::uint64_t bits =
      std::bit_cast<std::uint64_t>(std::max(deviation, 0.0));
  std::uint64_t cur = max_bits_.load(std::memory_order_relaxed);
  while (bits > cur && !max_bits_.compare_exchange_weak(
                           cur, bits, std::memory_order_relaxed)) {
  }
  if (!(deviation <= cfg_.tolerance)) {
    violations_.fetch_add(1, std::memory_order_relaxed);
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "ToleranceAudit: fast-path deviation %.17g exceeds "
                  "tolerance %.17g",
                  deviation, cfg_.tolerance);
    throw std::runtime_error(msg);
  }
}

void ToleranceAudit::fold(const ToleranceAudit& other) noexcept {
  const std::uint64_t bits = other.max_bits_.load(std::memory_order_relaxed);
  std::uint64_t cur = max_bits_.load(std::memory_order_relaxed);
  while (bits > cur && !max_bits_.compare_exchange_weak(
                           cur, bits, std::memory_order_relaxed)) {
  }
  samples_.fetch_add(other.samples(), std::memory_order_relaxed);
  violations_.fetch_add(other.violations(), std::memory_order_relaxed);
}

void ToleranceAudit::reset() noexcept {
  max_bits_.store(0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  violations_.store(0, std::memory_order_relaxed);
}

double ToleranceAudit::max_deviation() const noexcept {
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

namespace {

ToleranceAudit& global_audit() {
  static ToleranceAudit audit{AuditConfig{}};
  return audit;
}

thread_local ToleranceAudit* t_current_audit = nullptr;

}  // namespace

ToleranceAudit& ToleranceAudit::global() noexcept { return global_audit(); }

ToleranceAudit* ToleranceAudit::current() noexcept {
  return t_current_audit != nullptr ? t_current_audit : &global_audit();
}

ToleranceAudit::Scope::Scope(ToleranceAudit& audit) noexcept
    : previous_(t_current_audit) {
  t_current_audit = &audit;
}

ToleranceAudit::Scope::~Scope() { t_current_audit = previous_; }

}  // namespace gasched::core
