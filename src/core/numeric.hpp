#pragma once
// Numeric-mode contract of the evaluation core (docs/evaluation.md,
// "Numeric modes").
//
// The canonical pricing paths promise bit-reproducibility: every golden
// value, figure CSV, and serial-vs-parallel identity in this repo pins
// the exact doubles the left-to-right summation produces. That promise
// forbids SIMD reassociation — so the fast path is opt-in, and it ships
// with its own trust story: whenever kFast is active, a ToleranceAudit
// shadow-prices a deterministic sample of evaluations through the exact
// path and hard-errors if the relative deviation exceeds a configured
// bound (default 1e-12). The same split IP-PMM-style solvers use: an
// untrusted fast iteration path is fine as long as a cheap trusted check
// bounds it.
//
// This header is a leaf on purpose (no project includes): ga/engine.hpp
// and meta/batch_policy.hpp embed NumericMode in their configs without
// creating an include cycle with core/fitness.hpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gasched::core {

/// How an evaluator sums.
enum class NumericMode {
  /// Canonical left-to-right summation; bit-identical to every golden
  /// and figure CSV ever produced. The default everywhere.
  kExact,
  /// SIMD kernels (core/kernels.hpp): mathematically equal, NOT bitwise
  /// (different FP association). Only legal behind a ToleranceAudit.
  kFast,
};

/// "exact" / "fast".
const char* numeric_mode_name(NumericMode mode) noexcept;

/// Parses "exact" / "fast" (case-sensitive); throws std::runtime_error
/// listing the valid names otherwise.
NumericMode parse_numeric_mode(const std::string& name);

/// Process-wide default mode, read by every config default-initializer
/// (GaConfig, BatchSearchConfig) and evaluator constructed without an
/// explicit mode. Initialized once from the GASCHED_NUMERIC_MODE
/// environment variable ("exact"/"fast"; unset or unrecognized = exact);
/// set_default_numeric_mode() overrides it at any time (the [eval]
/// config section does exactly that, so INI beats environment).
NumericMode default_numeric_mode() noexcept;
void set_default_numeric_mode(NumericMode mode) noexcept;

/// Relative deviation of a fast metric from its exact shadow, with a
/// scale floor: |fast − exact| / max(|fast|, |exact|, scale). The floor
/// keeps conditioning honest — E = sqrt(Σ(ψ−C_j)²) can cancel to ~0 on a
/// near-perfect schedule, where its absolute error against the natural
/// time scale ψ is the meaningful measure, not the ratio of two noise
/// terms. Returns 0 when everything (including scale) is zero.
double metric_deviation(double fast, double exact, double scale) noexcept;

/// Audit-side configuration.
struct AuditConfig {
  /// Hard relative bound per sampled evaluation. A violation throws.
  /// Negative means "every sample violates" — the deliberate-violation
  /// test hook.
  double tolerance = 1e-12;
  /// Shadow-price every `sample_period`-th fast pricing (per sampling
  /// stream — see docs/evaluation.md for the stream rule). 0 disables
  /// sampling entirely.
  std::size_t sample_period = 64;
};

/// Accumulates tolerance-audit observations. Thread-safe: record() and
/// fold() may race freely (atomic max / counters); configure() must not
/// race with recording — configure before runs start.
///
/// Resolution rule: evaluators capture ToleranceAudit::current() at
/// construction when their mode is kFast — the innermost Scope installed
/// on the constructing thread, else the process-wide global(). The
/// experiment runner scopes one audit per replication so per-run maxima
/// attribute deterministically, then folds into global().
class ToleranceAudit {
 public:
  /// Config copied from global() — the per-replication constructor.
  ToleranceAudit();
  explicit ToleranceAudit(AuditConfig cfg);

  /// Replaces the configuration. Not safe concurrently with record().
  void configure(AuditConfig cfg);
  AuditConfig config() const noexcept { return cfg_; }

  /// Records one sampled deviation, folding it into the running max.
  /// Throws std::runtime_error when the deviation exceeds the tolerance
  /// (or always, when the tolerance is negative) — fast-mode violations
  /// are hard errors, never warnings.
  void record(double deviation);

  /// Folds another audit's observations into this one (max/samples/
  /// violations). Used to roll per-replication audits into global().
  void fold(const ToleranceAudit& other) noexcept;

  /// Clears observations (config stays).
  void reset() noexcept;

  double max_deviation() const noexcept;
  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }

  /// Process-wide audit; the fallback of current().
  static ToleranceAudit& global() noexcept;
  /// Innermost Scope-installed audit of the calling thread, else
  /// global(). Never null.
  static ToleranceAudit* current() noexcept;

  /// RAII: installs `audit` as the calling thread's current() audit,
  /// restoring the previous one on destruction. Evaluators built under
  /// the scope keep their captured pointer, so the audit must outlive
  /// them (run_one scopes the whole replication).
  class Scope {
   public:
    explicit Scope(ToleranceAudit& audit) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ToleranceAudit* previous_;
  };

 private:
  AuditConfig cfg_;
  std::atomic<std::uint64_t> max_bits_{0};  // bit pattern of the max (>= 0)
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> violations_{0};
};

}  // namespace gasched::core
