#pragma once
// JSON export of experiment results: a machine-readable companion to the
// ASCII tables and CSV files the bench binaries emit, for plotting
// pipelines and regression tracking.

#include <filesystem>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "util/json.hpp"

namespace gasched::metrics {

/// Emits `cell` as a JSON object into an in-progress writer (used by the
/// streaming JSONL sink to embed cells inside its per-row objects).
void write_cell_json(util::JsonWriter& w, const CellSummary& cell);

/// Serialises one aggregated cell as a JSON object string:
/// {"scheduler": ..., "replications": n, "makespan": {summary...}, ...}.
std::string cell_to_json(const CellSummary& cell);

/// Serialises an experiment (name + cells) as a JSON document string.
std::string experiment_to_json(const std::string& experiment,
                               const std::vector<CellSummary>& cells);

/// Writes experiment_to_json to `path` (throws std::runtime_error on I/O
/// failure).
void write_experiment_json(const std::string& experiment,
                           const std::vector<CellSummary>& cells,
                           const std::filesystem::path& path);

}  // namespace gasched::metrics
