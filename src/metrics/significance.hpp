#pragma once
// Statistical significance for scheduler comparisons. The paper reports
// means of 20–50 replications; these helpers quantify whether "A beats B"
// is more than replication noise:
//
//  * Mann–Whitney U (rank-sum) test with normal approximation and tie
//    correction — distribution-free, right for skewed makespans.
//  * Bootstrap confidence interval on the difference of means.
//  * Common-language effect size P(A < B).

#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace gasched::metrics {

/// Result of a two-sample Mann–Whitney U test.
struct MannWhitneyResult {
  double u = 0.0;        ///< U statistic of the first sample
  double z = 0.0;        ///< normal-approximation z score (tie-corrected)
  double p_two_sided = 1.0;  ///< two-sided p-value
  /// Common-language effect size: probability that a random draw from the
  /// first sample is smaller than one from the second.
  double prob_a_less = 0.5;
};

/// Runs the test on two samples (each needs >= 2 observations; throws
/// std::invalid_argument otherwise).
MannWhitneyResult mann_whitney(std::span<const double> a,
                               std::span<const double> b);

/// Bootstrap percentile CI for mean(a) − mean(b).
struct BootstrapCi {
  double mean_diff = 0.0;  ///< observed mean(a) − mean(b)
  double lo = 0.0;         ///< lower percentile bound
  double hi = 0.0;         ///< upper percentile bound
};

/// `level` in (0,1), e.g. 0.95. Deterministic given `seed`.
BootstrapCi bootstrap_mean_diff(std::span<const double> a,
                                std::span<const double> b,
                                double level = 0.95,
                                std::size_t resamples = 2000,
                                std::uint64_t seed = 1);

/// Standard normal CDF (exposed for tests).
double normal_cdf(double z);

}  // namespace gasched::metrics
