#include "metrics/sink.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <system_error>

#include "metrics/report_json.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace gasched::metrics {

namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

double SweepRow::extra(const std::string& column, double fallback) const {
  for (const auto& [name, value] : extras) {
    if (name == column) return value;
  }
  return fallback;
}

void ResultSink::begin(const SweepHeader&) {}
void ResultSink::end() {}

// --- TableSink --------------------------------------------------------------

TableSink::TableSink(std::ostream& os) : os_(os) {}

void TableSink::begin(const SweepHeader& header) { header_ = header; }

void TableSink::row(const SweepRow& row) { rows_.push_back(row); }

void TableSink::end() {
  bool any_scheduler = false, any_error = false;
  bool makespan = false, efficiency = false, response = false, wall = false,
       invocations = false, requeued = false;
  // When "scheduler" is an axis its coordinate column already names the
  // scheduler; don't repeat it.
  const bool scheduler_is_axis =
      std::find(header_.axes.begin(), header_.axes.end(), "scheduler") !=
      header_.axes.end();
  for (const auto& r : rows_) {
    any_scheduler |= !r.scheduler.empty() && !scheduler_is_axis;
    any_error |= !r.ok();
    makespan |= r.cell.makespan.count > 0;
    efficiency |= r.cell.efficiency.count > 0;
    response |= r.cell.response.count > 0;
    wall |= r.cell.sched_wall.count > 0;
    invocations |= r.cell.invocations.count > 0;
    requeued |= r.cell.requeued.count > 0 && r.cell.requeued.max > 0.0;
  }

  std::vector<std::string> headers = header_.axes;
  if (any_scheduler) headers.push_back("scheduler");
  if (makespan) {
    headers.push_back("makespan");
    headers.push_back("ci95");
  }
  if (efficiency) headers.push_back("efficiency");
  if (response) headers.push_back("response");
  if (wall) headers.push_back("sched_wall_s");
  if (invocations) headers.push_back("invocations");
  if (requeued) headers.push_back("requeued");
  for (const auto& extra : header_.extra_columns) headers.push_back(extra);
  if (any_error) headers.push_back("error");

  util::Table table(headers);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    for (const auto& axis : header_.axes) {
      std::string label;
      for (const auto& [name, value] : r.coords) {
        if (name == axis) label = value;
      }
      cells.push_back(label);
    }
    if (any_scheduler) cells.push_back(r.scheduler);
    const bool has_stats = r.ok();
    auto stat = [&](const util::Summary& s, double v) {
      cells.push_back(has_stats && s.count > 0 ? util::fmt(v) : "");
    };
    if (makespan) {
      stat(r.cell.makespan, r.cell.makespan.mean);
      stat(r.cell.makespan, r.cell.makespan.ci95);
    }
    if (efficiency) stat(r.cell.efficiency, r.cell.efficiency.mean);
    if (response) stat(r.cell.response, r.cell.response.mean);
    if (wall) stat(r.cell.sched_wall, r.cell.sched_wall.mean);
    if (invocations) stat(r.cell.invocations, r.cell.invocations.mean);
    if (requeued) stat(r.cell.requeued, r.cell.requeued.mean);
    for (const auto& extra : header_.extra_columns) {
      bool found = false;
      for (const auto& [name, value] : r.extras) {
        if (name == extra) {
          cells.push_back(util::fmt(value));
          found = true;
          break;
        }
      }
      if (!found) cells.push_back("");
    }
    if (any_error) cells.push_back(r.error);
    table.add_row(std::move(cells));
  }
  table.print(os_);
}

// --- CsvSink ----------------------------------------------------------------

CsvSink::CsvSink(std::filesystem::path path, SinkMode mode)
    : path_(std::move(path)), mode_(mode) {}

std::vector<std::string> csv_columns(SweepHeader header) {
  // The fixed "scheduler" column already carries a scheduler axis.
  std::erase(header.axes, "scheduler");
  std::vector<std::string> cols{"index"};
  for (const auto& axis : header.axes) cols.push_back(axis);
  cols.insert(cols.end(),
              {"scheduler", "replications", "makespan_mean", "makespan_ci95",
               "efficiency_mean", "response_mean", "invocations_mean",
               "requeued_mean"});
  for (const auto& extra : header.extra_columns) cols.push_back(extra);
  cols.push_back("error");
  return cols;
}

void CsvSink::begin(const SweepHeader& header) {
  header_ = header;
  std::erase(header_.axes, "scheduler");
  const std::vector<std::string> cols = csv_columns(header);

  // Resume: keep the longest valid prefix of the existing file (header +
  // complete data rows), record its cell indices, drop everything after
  // the first partial or malformed line (a kill mid-write), and append.
  bool append = false;
  if (mode_ == SinkMode::kResume && std::filesystem::exists(path_)) {
    const std::string text = slurp(path_);
    const std::string expected = util::format_csv_row(cols);
    std::size_t pos = 0, keep = 0;
    bool header_seen = false;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) break;  // partial trailing line
      const std::string_view line(text.data() + pos, nl - pos);
      if (!header_seen) {
        if (line != expected) {
          throw std::runtime_error(
              "CsvSink: cannot resume " + path_.string() +
              ": existing header does not match this sweep's schema "
              "(delete the file or run without resume)");
        }
        header_seen = true;
      } else {
        const auto cells = util::parse_csv_line(line);
        std::size_t idx = 0;
        if (cells.size() != cols.size() || !util::parse_size_t(cells[0], idx)) {
          break;
        }
        // A row with a non-empty error column is a *failed* cell: stop
        // the valid prefix here so the resume retries it (and everything
        // after it) instead of sealing the failure into the final file.
        if (!cells.back().empty()) break;
        present_.insert(idx);
      }
      pos = nl + 1;
      keep = pos;
    }
    if (keep > 0) {
      if (keep < text.size()) std::filesystem::resize_file(path_, keep);
      append = true;
    }
  }

  writer_ = std::make_unique<util::CsvWriter>(path_, append);
  if (!append) {
    writer_->row(cols);
    writer_->flush();
  }
}

void CsvSink::row(const SweepRow& row) {
  if (!writer_) {
    throw std::logic_error("CsvSink: row() before begin()");
  }
  if (present_.count(row.index) > 0) return;  // already on disk (resume)
  std::vector<std::string> cells{std::to_string(row.index)};
  for (const auto& axis : header_.axes) {
    std::string label;
    for (const auto& [name, value] : row.coords) {
      if (name == axis) label = value;
    }
    cells.push_back(label);
  }
  cells.push_back(row.scheduler);
  const auto stat = [&](const util::Summary& s, double v) {
    cells.push_back(row.ok() && s.count > 0 ? util::format_double(v) : "");
  };
  cells.push_back(row.ok() ? std::to_string(row.cell.replications) : "");
  stat(row.cell.makespan, row.cell.makespan.mean);
  stat(row.cell.makespan, row.cell.makespan.ci95);
  stat(row.cell.efficiency, row.cell.efficiency.mean);
  stat(row.cell.response, row.cell.response.mean);
  stat(row.cell.invocations, row.cell.invocations.mean);
  stat(row.cell.requeued, row.cell.requeued.mean);
  for (const auto& extra : header_.extra_columns) {
    bool found = false;
    for (const auto& [name, value] : row.extras) {
      if (name == extra) {
        cells.push_back(util::format_double(value));
        found = true;
        break;
      }
    }
    if (!found) cells.push_back("");
  }
  // Exception text can contain newlines; flatten it so every physical
  // line of the file is one row (the invariant the resume scanner and
  // shard merger read by).
  std::string error = row.error;
  for (char& c : error) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  cells.push_back(error);
  writer_->row(cells);
  writer_->flush();
}

// --- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(std::filesystem::path path, SinkMode mode)
    : path_(std::move(path)), mode_(mode) {}

void JsonlSink::begin(const SweepHeader& header) {
  header_ = header;
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }

  bool append = false;
  if (mode_ == SinkMode::kResume && std::filesystem::exists(path_)) {
    const std::string text = slurp(path_);
    // Every line this sink ever writes opens with the sweep name and
    // cell index, in this exact spelling (JsonWriter is deterministic).
    const std::string prefix =
        "{\"sweep\":\"" + util::json_escape(header_.name) + "\",\"index\":";
    std::size_t pos = 0, keep = 0;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) break;  // partial trailing line
      const std::string_view line(text.data() + pos, nl - pos);
      if (!line.starts_with(prefix)) {
        if (line.starts_with("{\"sweep\":\"")) {
          throw std::runtime_error(
              "JsonlSink: cannot resume " + path_.string() +
              ": file belongs to a different sweep (delete it or run "
              "without resume)");
        }
        break;  // malformed line: keep only what precedes it
      }
      if (line.back() != '}') break;
      // Failed cells carry an "error" key (JsonWriter emits it for no
      // other reason); stop the prefix there so resume retries them.
      if (line.find("\"error\":\"") != std::string_view::npos) break;
      std::size_t digits = prefix.size();
      while (digits < line.size() && std::isdigit(line[digits]) != 0) {
        ++digits;
      }
      std::size_t idx = 0;
      if (!util::parse_size_t(line.substr(prefix.size(), digits - prefix.size()),
                       idx)) {
        break;
      }
      present_.insert(idx);
      pos = nl + 1;
      keep = pos;
    }
    if (keep > 0) {
      if (keep < text.size()) std::filesystem::resize_file(path_, keep);
      append = true;
    }
  }

  out_ = std::make_unique<std::ofstream>(
      path_, append ? std::ios::app : std::ios::trunc);
  if (!*out_) {
    throw std::runtime_error("JsonlSink: cannot open " + path_.string());
  }
}

void JsonlSink::row(const SweepRow& row) {
  if (!out_) {
    throw std::logic_error("JsonlSink: row() before begin()");
  }
  if (present_.count(row.index) > 0) return;  // already on disk (resume)
  util::JsonWriter w;
  w.begin_object();
  w.key("sweep").string(header_.name);
  w.key("index").number(row.index);
  w.key("coords").begin_object();
  for (const auto& [axis, label] : row.coords) {
    w.key(axis).string(label);
  }
  w.end_object();
  if (!row.scheduler.empty()) w.key("scheduler").string(row.scheduler);
  if (!row.ok()) {
    w.key("error").string(row.error);
  } else {
    w.key("cell");
    write_cell_json(w, row.cell);
    if (!row.extras.empty()) {
      w.key("extras").begin_object();
      for (const auto& [name, value] : row.extras) {
        w.key(name).number(value);
      }
      w.end_object();
    }
  }
  w.end_object();
  *out_ << w.str() << '\n';
  out_->flush();
}

}  // namespace gasched::metrics
