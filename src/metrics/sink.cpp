#include "metrics/sink.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "metrics/report_json.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace gasched::metrics {

double SweepRow::extra(const std::string& column, double fallback) const {
  for (const auto& [name, value] : extras) {
    if (name == column) return value;
  }
  return fallback;
}

void ResultSink::begin(const SweepHeader&) {}
void ResultSink::end() {}

// --- TableSink --------------------------------------------------------------

TableSink::TableSink(std::ostream& os) : os_(os) {}

void TableSink::begin(const SweepHeader& header) { header_ = header; }

void TableSink::row(const SweepRow& row) { rows_.push_back(row); }

void TableSink::end() {
  bool any_scheduler = false, any_error = false;
  bool makespan = false, efficiency = false, response = false, wall = false,
       invocations = false, requeued = false;
  // When "scheduler" is an axis its coordinate column already names the
  // scheduler; don't repeat it.
  const bool scheduler_is_axis =
      std::find(header_.axes.begin(), header_.axes.end(), "scheduler") !=
      header_.axes.end();
  for (const auto& r : rows_) {
    any_scheduler |= !r.scheduler.empty() && !scheduler_is_axis;
    any_error |= !r.ok();
    makespan |= r.cell.makespan.count > 0;
    efficiency |= r.cell.efficiency.count > 0;
    response |= r.cell.response.count > 0;
    wall |= r.cell.sched_wall.count > 0;
    invocations |= r.cell.invocations.count > 0;
    requeued |= r.cell.requeued.count > 0 && r.cell.requeued.max > 0.0;
  }

  std::vector<std::string> headers = header_.axes;
  if (any_scheduler) headers.push_back("scheduler");
  if (makespan) {
    headers.push_back("makespan");
    headers.push_back("ci95");
  }
  if (efficiency) headers.push_back("efficiency");
  if (response) headers.push_back("response");
  if (wall) headers.push_back("sched_wall_s");
  if (invocations) headers.push_back("invocations");
  if (requeued) headers.push_back("requeued");
  for (const auto& extra : header_.extra_columns) headers.push_back(extra);
  if (any_error) headers.push_back("error");

  util::Table table(headers);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    for (const auto& axis : header_.axes) {
      std::string label;
      for (const auto& [name, value] : r.coords) {
        if (name == axis) label = value;
      }
      cells.push_back(label);
    }
    if (any_scheduler) cells.push_back(r.scheduler);
    const bool has_stats = r.ok();
    auto stat = [&](const util::Summary& s, double v) {
      cells.push_back(has_stats && s.count > 0 ? util::fmt(v) : "");
    };
    if (makespan) {
      stat(r.cell.makespan, r.cell.makespan.mean);
      stat(r.cell.makespan, r.cell.makespan.ci95);
    }
    if (efficiency) stat(r.cell.efficiency, r.cell.efficiency.mean);
    if (response) stat(r.cell.response, r.cell.response.mean);
    if (wall) stat(r.cell.sched_wall, r.cell.sched_wall.mean);
    if (invocations) stat(r.cell.invocations, r.cell.invocations.mean);
    if (requeued) stat(r.cell.requeued, r.cell.requeued.mean);
    for (const auto& extra : header_.extra_columns) {
      bool found = false;
      for (const auto& [name, value] : r.extras) {
        if (name == extra) {
          cells.push_back(util::fmt(value));
          found = true;
          break;
        }
      }
      if (!found) cells.push_back("");
    }
    if (any_error) cells.push_back(r.error);
    table.add_row(std::move(cells));
  }
  table.print(os_);
}

// --- CsvSink ----------------------------------------------------------------

CsvSink::CsvSink(std::filesystem::path path) : path_(std::move(path)) {}

void CsvSink::begin(const SweepHeader& header) {
  header_ = header;
  // The fixed "scheduler" column already carries a scheduler axis.
  std::erase(header_.axes, "scheduler");
  writer_ = std::make_unique<util::CsvWriter>(path_);
  std::vector<std::string> cols{"index"};
  for (const auto& axis : header_.axes) cols.push_back(axis);
  cols.insert(cols.end(),
              {"scheduler", "replications", "makespan_mean", "makespan_ci95",
               "efficiency_mean", "response_mean", "invocations_mean",
               "requeued_mean"});
  for (const auto& extra : header.extra_columns) cols.push_back(extra);
  cols.push_back("error");
  writer_->row(cols);
  writer_->flush();
}

void CsvSink::row(const SweepRow& row) {
  if (!writer_) {
    throw std::logic_error("CsvSink: row() before begin()");
  }
  std::vector<std::string> cells{std::to_string(row.index)};
  for (const auto& axis : header_.axes) {
    std::string label;
    for (const auto& [name, value] : row.coords) {
      if (name == axis) label = value;
    }
    cells.push_back(label);
  }
  cells.push_back(row.scheduler);
  const auto stat = [&](const util::Summary& s, double v) {
    cells.push_back(row.ok() && s.count > 0 ? util::format_double(v) : "");
  };
  cells.push_back(row.ok() ? std::to_string(row.cell.replications) : "");
  stat(row.cell.makespan, row.cell.makespan.mean);
  stat(row.cell.makespan, row.cell.makespan.ci95);
  stat(row.cell.efficiency, row.cell.efficiency.mean);
  stat(row.cell.response, row.cell.response.mean);
  stat(row.cell.invocations, row.cell.invocations.mean);
  stat(row.cell.requeued, row.cell.requeued.mean);
  for (const auto& extra : header_.extra_columns) {
    bool found = false;
    for (const auto& [name, value] : row.extras) {
      if (name == extra) {
        cells.push_back(util::format_double(value));
        found = true;
        break;
      }
    }
    if (!found) cells.push_back("");
  }
  cells.push_back(row.error);
  writer_->row(cells);
  writer_->flush();
}

// --- JsonlSink --------------------------------------------------------------

JsonlSink::JsonlSink(std::filesystem::path path) : path_(std::move(path)) {}

void JsonlSink::begin(const SweepHeader& header) {
  header_ = header;
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  out_ = std::make_unique<std::ofstream>(path_, std::ios::trunc);
  if (!*out_) {
    throw std::runtime_error("JsonlSink: cannot open " + path_.string());
  }
}

void JsonlSink::row(const SweepRow& row) {
  if (!out_) {
    throw std::logic_error("JsonlSink: row() before begin()");
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("sweep").string(header_.name);
  w.key("index").number(row.index);
  w.key("coords").begin_object();
  for (const auto& [axis, label] : row.coords) {
    w.key(axis).string(label);
  }
  w.end_object();
  if (!row.scheduler.empty()) w.key("scheduler").string(row.scheduler);
  if (!row.ok()) {
    w.key("error").string(row.error);
  } else {
    w.key("cell");
    write_cell_json(w, row.cell);
    if (!row.extras.empty()) {
      w.key("extras").begin_object();
      for (const auto& [name, value] : row.extras) {
        w.key(name).number(value);
      }
      w.end_object();
    }
  }
  w.end_object();
  *out_ << w.str() << '\n';
  out_->flush();
}

}  // namespace gasched::metrics
