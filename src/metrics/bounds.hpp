#pragma once
// Makespan lower bounds and exact solutions for small instances.
//
// The paper claims its scheduler "can produce near-optimal schedules"
// (§3) without quantifying the gap. These utilities make the claim
// testable:
//
//  * makespan_lower_bound — a valid lower bound for any schedule of a
//    task set on heterogeneous processors with per-link dispatch costs:
//    the maximum of the work bound (all processors busy until the end,
//    every dispatch paying its cheapest link) and the critical-task
//    bound (some task must finish on its own best processor).
//  * optimal_makespan_exact — branch-and-bound over the full assignment
//    space for tiny instances (exact optimum; exponential — keep
//    N ≤ ~12, M ≤ ~4). Used by tests and the optimality-gap bench to
//    measure how near "near-optimal" is.
//  * relaxation_lower_bound — the third bound: the fractional
//    assignment relaxation solved by the IP-PMM interior-point method
//    (src/opt), reported through its *certified* dual bound and never
//    below makespan_lower_bound. Polynomial, so it scales to the
//    H=600/M=50 sizes the benches run at. See docs/bounds.md.
//
// Both operate on the scheduler-visible quantities (rates, pending load,
// per-link costs), mirroring core::ScheduleEvaluator's cost model:
// task t on processor j costs t/P_j + c_j seconds after the processor's
// existing drain time δ_j.

#include <cstddef>
#include <vector>

namespace gasched::metrics {

/// Instance description for the bound/exact computations.
struct BoundInstance {
  /// Task sizes in MFLOPs.
  std::vector<double> task_sizes;
  /// Processor rates P_j in Mflop/s (must be positive).
  std::vector<double> rates;
  /// Existing load L_j in MFLOPs per processor (optional; empty = 0).
  std::vector<double> pending_mflops;
  /// Per-dispatch communication cost c_j in seconds per processor
  /// (optional; empty = 0).
  std::vector<double> comm_costs;
};

/// Valid makespan lower bound for any assignment of the instance's tasks
/// (maximum of the four bounds documented above; each is individually
/// valid, so their maximum is).
double makespan_lower_bound(const BoundInstance& inst);

/// Exact optimal makespan by branch-and-bound over all M^N assignments
/// (queue order never matters in this cost model). Tasks are explored
/// largest-first with the work bound for pruning. Throws
/// std::invalid_argument when the instance exceeds `max_states`
/// expansions worth of search space (default caps at roughly N ≤ 14 on
/// small M).
double optimal_makespan_exact(const BoundInstance& inst,
                              std::size_t max_states = 50'000'000);

/// Knobs of the relaxation bound — mirrors the [bounds] INI section
/// (exp::bounds_from_config) and the defaults used by the fuzz suite.
struct RelaxationBoundOptions {
  /// false = skip the solver entirely; relaxation_lower_bound then
  /// returns makespan_lower_bound.
  bool enabled = true;
  double tolerance = 1e-8;        ///< IP-PMM relative tolerance
  std::size_t max_iterations = 60;
};

/// Certified lower bound from the fractional-assignment relaxation's
/// dual certificate (opt::solve_makespan_relaxation), folded with
/// makespan_lower_bound: max(dual certificate, combinatorial bound).
/// Each part is individually a valid bound, so the maximum is — and the
/// certificate stays valid even when the interior-point solver stops at
/// max_iterations, so early termination only costs tightness, never
/// correctness. Deterministic; same validation/throws as
/// makespan_lower_bound.
double relaxation_lower_bound(const BoundInstance& inst,
                              const RelaxationBoundOptions& options = {});

}  // namespace gasched::metrics
