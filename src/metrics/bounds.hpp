#pragma once
// Makespan lower bounds and exact solutions for small instances.
//
// The paper claims its scheduler "can produce near-optimal schedules"
// (§3) without quantifying the gap. These utilities make the claim
// testable:
//
//  * makespan_lower_bound — a valid lower bound for any schedule of a
//    task set on heterogeneous processors with per-link dispatch costs:
//    the maximum of the work bound (all processors busy until the end,
//    every dispatch paying its cheapest link) and the critical-task
//    bound (some task must finish on its own best processor).
//  * optimal_makespan_exact — branch-and-bound over the full assignment
//    space for tiny instances (exact optimum; exponential — keep
//    N ≤ ~12, M ≤ ~4). Used by tests and the optimality-gap bench to
//    measure how near "near-optimal" is.
//
// Both operate on the scheduler-visible quantities (rates, pending load,
// per-link costs), mirroring core::ScheduleEvaluator's cost model:
// task t on processor j costs t/P_j + c_j seconds after the processor's
// existing drain time δ_j.

#include <cstddef>
#include <vector>

namespace gasched::metrics {

/// Instance description for the bound/exact computations.
struct BoundInstance {
  /// Task sizes in MFLOPs.
  std::vector<double> task_sizes;
  /// Processor rates P_j in Mflop/s (must be positive).
  std::vector<double> rates;
  /// Existing load L_j in MFLOPs per processor (optional; empty = 0).
  std::vector<double> pending_mflops;
  /// Per-dispatch communication cost c_j in seconds per processor
  /// (optional; empty = 0).
  std::vector<double> comm_costs;
};

/// Valid makespan lower bound for any assignment of the instance's tasks
/// (maximum of the four bounds documented above; each is individually
/// valid, so their maximum is).
double makespan_lower_bound(const BoundInstance& inst);

/// Exact optimal makespan by branch-and-bound over all M^N assignments
/// (queue order never matters in this cost model). Tasks are explored
/// largest-first with the work bound for pruning. Throws
/// std::invalid_argument when the instance exceeds `max_states`
/// expansions worth of search space (default caps at roughly N ≤ 14 on
/// small M).
double optimal_makespan_exact(const BoundInstance& inst,
                              std::size_t max_states = 50'000'000);

}  // namespace gasched::metrics
