#include "metrics/bounds.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "opt/relaxation.hpp"

namespace gasched::metrics {

namespace {

void validate(const BoundInstance& inst) {
  if (inst.rates.empty()) {
    throw std::invalid_argument("BoundInstance: no processors");
  }
  for (const double r : inst.rates) {
    if (!(r > 0.0)) {
      throw std::invalid_argument("BoundInstance: rates must be positive");
    }
  }
  if (!inst.pending_mflops.empty() &&
      inst.pending_mflops.size() != inst.rates.size()) {
    throw std::invalid_argument("BoundInstance: pending size mismatch");
  }
  if (!inst.comm_costs.empty() &&
      inst.comm_costs.size() != inst.rates.size()) {
    throw std::invalid_argument("BoundInstance: comm size mismatch");
  }
}

double pending(const BoundInstance& inst, std::size_t j) {
  return inst.pending_mflops.empty() ? 0.0 : inst.pending_mflops[j];
}

double comm(const BoundInstance& inst, std::size_t j) {
  return inst.comm_costs.empty() ? 0.0 : inst.comm_costs[j];
}

}  // namespace

double makespan_lower_bound(const BoundInstance& inst) {
  validate(inst);
  const std::size_t M = inst.rates.size();
  const std::size_t N = inst.task_sizes.size();

  double total_rate = 0.0;
  double min_comm = std::numeric_limits<double>::infinity();
  double min_comm_rate = std::numeric_limits<double>::infinity();
  double max_delta = 0.0;
  for (std::size_t j = 0; j < M; ++j) {
    total_rate += inst.rates[j];
    min_comm = std::min(min_comm, comm(inst, j));
    min_comm_rate = std::min(min_comm_rate, comm(inst, j) * inst.rates[j]);
    max_delta = std::max(max_delta, pending(inst, j) / inst.rates[j]);
  }

  double total_work = 0.0;
  for (const double t : inst.task_sizes) total_work += t;
  double total_load = total_work;
  for (std::size_t j = 0; j < M; ++j) total_load += pending(inst, j);

  // Work bound with communication: processor j executes at most
  // P_j·(T − n_j·c_j) MFLOPs in a schedule of makespan T, so
  // T·ΣP ≥ total_load + Σ_j n_j·c_j·P_j ≥ total_load + N·min_j(c_j·P_j).
  const double comm_work =
      N > 0 && std::isfinite(min_comm_rate)
          ? static_cast<double>(N) * min_comm_rate
          : 0.0;
  double bound = (total_load + comm_work) / total_rate;

  // Pigeonhole on dispatches: some processor receives >= ceil(N/M) tasks
  // and pays at least min_comm for each (comm is serialised per
  // processor in this cost model).
  if (N > 0 && std::isfinite(min_comm)) {
    const double per_proc = std::ceil(static_cast<double>(N) /
                                      static_cast<double>(M));
    bound = std::max(bound, per_proc * min_comm);
  }

  // Critical-task bound: every task must run somewhere; its best case is
  // an empty best processor.
  for (const double t : inst.task_sizes) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < M; ++j) {
      best = std::min(best, t / inst.rates[j] + comm(inst, j));
    }
    bound = std::max(bound, best);
  }

  // A processor's existing load is indivisible: nothing finishes before
  // the most-loaded processor drains (its tasks are already placed).
  // Only a valid global bound when that processor must also appear in
  // the final makespan — it does: makespan = max_j C_j >= δ_j for all j.
  bound = std::max(bound, max_delta);
  return bound;
}

namespace {

struct Searcher {
  const BoundInstance& inst;
  std::size_t max_states;
  std::vector<std::size_t> order;   // task indices, largest first
  std::vector<double> completion;   // C_j during search
  double best = std::numeric_limits<double>::infinity();
  std::size_t states = 0;
  std::vector<double> suffix_work;  // Σ t over remaining tasks from depth d

  explicit Searcher(const BoundInstance& i, std::size_t cap)
      : inst(i), max_states(cap) {
    const std::size_t N = inst.task_sizes.size();
    order.resize(N);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return inst.task_sizes[a] > inst.task_sizes[b];
                     });
    completion.resize(inst.rates.size());
    for (std::size_t j = 0; j < inst.rates.size(); ++j) {
      completion[j] = pending(inst, j) / inst.rates[j];
    }
    suffix_work.assign(N + 1, 0.0);
    for (std::size_t d = N; d-- > 0;) {
      suffix_work[d] = suffix_work[d + 1] + inst.task_sizes[order[d]];
    }
  }

  double total_rate() const {
    double s = 0.0;
    for (const double r : inst.rates) s += r;
    return s;
  }

  void dfs(std::size_t depth) {
    if (++states > max_states) {
      throw std::invalid_argument(
          "optimal_makespan_exact: instance too large for exact search");
    }
    const std::size_t M = inst.rates.size();
    if (depth == order.size()) {
      double ms = 0.0;
      for (const double c : completion) ms = std::max(ms, c);
      best = std::min(best, ms);
      return;
    }
    // Prune: even perfectly divisible remaining work cannot beat best.
    double current_max = 0.0;
    double slack_work = 0.0;  // rate-weighted room below current_max
    for (const double c : completion) current_max = std::max(current_max, c);
    for (std::size_t j = 0; j < M; ++j) {
      slack_work += (current_max - completion[j]) * inst.rates[j];
    }
    const double remaining = suffix_work[depth];
    double optimistic = current_max;
    if (remaining > slack_work) {
      optimistic += (remaining - slack_work) / total_rate();
    }
    if (optimistic >= best) return;

    const std::size_t task = order[depth];
    for (std::size_t j = 0; j < M; ++j) {
      const double cost =
          inst.task_sizes[task] / inst.rates[j] + comm(inst, j);
      completion[j] += cost;
      if (completion[j] < best) {  // placing beyond best can never help
        dfs(depth + 1);
      }
      completion[j] -= cost;
    }
  }
};

}  // namespace

double relaxation_lower_bound(const BoundInstance& inst,
                              const RelaxationBoundOptions& options) {
  const double combinatorial = makespan_lower_bound(inst);  // also validates
  if (!options.enabled) return combinatorial;
  opt::RelaxationOptions solver;
  solver.tolerance = options.tolerance;
  solver.max_iterations = options.max_iterations;
  const opt::RelaxationResult r = opt::solve_makespan_relaxation(inst, solver);
  // The LP relaxation does not dominate every combinatorial bound (a
  // single task may be split fractionally across processors, beating the
  // critical-task bound), so fold them: both are certified, hence so is
  // the max.
  return std::max(combinatorial, r.certified_bound);
}

double optimal_makespan_exact(const BoundInstance& inst,
                              std::size_t max_states) {
  validate(inst);
  if (inst.task_sizes.empty()) {
    double ms = 0.0;
    for (std::size_t j = 0; j < inst.rates.size(); ++j) {
      ms = std::max(ms, pending(inst, j) / inst.rates[j]);
    }
    return ms;
  }
  Searcher s(inst, max_states);
  s.dfs(0);
  return s.best;
}

}  // namespace gasched::metrics
