#pragma once
// Utilization-over-time series derived from a recorded task trace
// (EngineConfig::record_task_trace). Shows when the cluster ramps up,
// saturates, and drains — the visual behind the paper's efficiency metric.

#include <vector>

#include "sim/engine.hpp"

namespace gasched::metrics {

/// One time bucket of cluster utilization.
struct TimelinePoint {
  double time = 0.0;           ///< bucket start time (seconds)
  double busy_fraction = 0.0;  ///< processor-time share spent executing
  double comm_fraction = 0.0;  ///< processor-time share spent receiving
};

/// Splits [0, makespan] into `bins` buckets and computes, per bucket, the
/// fraction of total processor-time spent executing and communicating.
/// Requires a non-empty task trace (throws std::invalid_argument
/// otherwise). Fractions are in [0, 1] and busy+comm <= 1 per bucket.
std::vector<TimelinePoint> utilization_timeline(
    const sim::SimulationResult& result, std::size_t bins = 50);

/// Integral check helper: mean busy fraction across the timeline, which
/// must equal SimulationResult::efficiency() up to binning error.
double mean_busy_fraction(const std::vector<TimelinePoint>& timeline);

}  // namespace gasched::metrics
