#include "metrics/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::metrics {

std::vector<TimelinePoint> utilization_timeline(
    const sim::SimulationResult& result, std::size_t bins) {
  if (result.task_trace.empty()) {
    throw std::invalid_argument(
        "utilization_timeline: no task trace "
        "(set EngineConfig::record_task_trace)");
  }
  if (bins == 0) {
    throw std::invalid_argument("utilization_timeline: bins >= 1");
  }
  const double span = std::max(result.makespan, 1e-12);
  const double width = span / static_cast<double>(bins);
  const double procs = static_cast<double>(result.per_proc.size());

  std::vector<TimelinePoint> timeline(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    timeline[b].time = static_cast<double>(b) * width;
  }
  // Spread each interval's duration over the buckets it overlaps.
  auto accumulate = [&](double lo, double hi, bool busy) {
    lo = std::clamp(lo, 0.0, span);
    hi = std::clamp(hi, 0.0, span);
    if (hi <= lo) return;
    const auto first = static_cast<std::size_t>(lo / width);
    const auto last = std::min(static_cast<std::size_t>(hi / width),
                               bins - 1);
    for (std::size_t b = first; b <= last; ++b) {
      const double bucket_lo = static_cast<double>(b) * width;
      const double bucket_hi = bucket_lo + width;
      const double overlap =
          std::min(hi, bucket_hi) - std::max(lo, bucket_lo);
      if (overlap <= 0.0) continue;
      const double share = overlap / (width * procs);
      if (busy) {
        timeline[b].busy_fraction += share;
      } else {
        timeline[b].comm_fraction += share;
      }
    }
  };
  for (const auto& rec : result.task_trace) {
    accumulate(rec.dispatch, rec.start, /*busy=*/false);
    accumulate(rec.start, rec.completion, /*busy=*/true);
  }
  return timeline;
}

double mean_busy_fraction(const std::vector<TimelinePoint>& timeline) {
  if (timeline.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : timeline) sum += p.busy_fraction;
  return sum / static_cast<double>(timeline.size());
}

}  // namespace gasched::metrics
