#include "metrics/report_json.hpp"

#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace gasched::metrics {

namespace {

void write_summary(util::JsonWriter& w, const util::Summary& s) {
  w.begin_object();
  w.key("count").number(s.count);
  w.key("mean").number(s.mean);
  w.key("stddev").number(s.stddev);
  w.key("min").number(s.min);
  w.key("max").number(s.max);
  w.key("median").number(s.median);
  w.key("ci95").number(s.ci95);
  w.end_object();
}

}  // namespace

void write_cell_json(util::JsonWriter& w, const CellSummary& cell) {
  w.begin_object();
  w.key("scheduler").string(cell.scheduler);
  w.key("replications").number(cell.replications);
  w.key("makespan");
  write_summary(w, cell.makespan);
  w.key("efficiency");
  write_summary(w, cell.efficiency);
  w.key("sched_wall_seconds");
  write_summary(w, cell.sched_wall);
  w.key("mean_response_time");
  write_summary(w, cell.response);
  w.key("scheduler_invocations");
  write_summary(w, cell.invocations);
  w.key("tasks_requeued");
  write_summary(w, cell.requeued);
  w.end_object();
}

std::string cell_to_json(const CellSummary& cell) {
  util::JsonWriter w;
  write_cell_json(w, cell);
  return w.str();
}

std::string experiment_to_json(const std::string& experiment,
                               const std::vector<CellSummary>& cells) {
  util::JsonWriter w;
  w.begin_object();
  w.key("experiment").string(experiment);
  w.key("cells").begin_array();
  for (const auto& cell : cells) write_cell_json(w, cell);
  w.end_array();
  w.end_object();
  return w.str();
}

void write_experiment_json(const std::string& experiment,
                           const std::vector<CellSummary>& cells,
                           const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_experiment_json: cannot open " +
                             path.string());
  }
  out << experiment_to_json(experiment, cells) << "\n";
  if (!out) {
    throw std::runtime_error("write_experiment_json: write failed for " +
                             path.string());
  }
}

}  // namespace gasched::metrics
