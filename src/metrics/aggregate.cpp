#include "metrics/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace gasched::metrics {

CellSummary aggregate(const std::string& scheduler,
                      std::span<const sim::SimulationResult> runs) {
  CellSummary cell;
  cell.scheduler = scheduler;
  cell.replications = runs.size();
  std::vector<double> mk, eff, wall, resp, inv, req, comp;
  mk.reserve(runs.size());
  eff.reserve(runs.size());
  wall.reserve(runs.size());
  resp.reserve(runs.size());
  inv.reserve(runs.size());
  req.reserve(runs.size());
  comp.reserve(runs.size());
  for (const auto& r : runs) {
    mk.push_back(r.makespan);
    eff.push_back(r.efficiency());
    wall.push_back(r.scheduler_wall_seconds);
    resp.push_back(r.mean_response_time);
    inv.push_back(static_cast<double>(r.scheduler_invocations));
    req.push_back(static_cast<double>(r.tasks_requeued));
    comp.push_back(static_cast<double>(r.tasks_completed));
    cell.audit_max_deviation =
        std::max(cell.audit_max_deviation, r.audit_max_deviation);
  }
  cell.makespan = util::summarize(mk);
  cell.efficiency = util::summarize(eff);
  cell.sched_wall = util::summarize(wall);
  cell.response = util::summarize(resp);
  cell.invocations = util::summarize(inv);
  cell.requeued = util::summarize(req);
  cell.completed = util::summarize(comp);
  return cell;
}

double busy_time_cv(const sim::SimulationResult& r) {
  if (r.per_proc.empty()) return 0.0;
  util::RunningStats rs;
  for (const auto& p : r.per_proc) rs.add(p.busy_time);
  return rs.mean() > 0.0 ? rs.stddev() / rs.mean() : 0.0;
}

double jain_fairness(const sim::SimulationResult& r) {
  if (r.per_proc.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& p : r.per_proc) {
    sum += p.busy_time;
    sum_sq += p.busy_time * p.busy_time;
  }
  if (sum_sq <= 0.0) return 1.0;
  const auto n = static_cast<double>(r.per_proc.size());
  return (sum * sum) / (n * sum_sq);
}

}  // namespace gasched::metrics
