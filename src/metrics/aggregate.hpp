#pragma once
// Aggregation of simulation results across replications. The paper reports
// averages of 20–50 runs per point; these helpers compute the same
// summaries plus dispersion.

#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace gasched::metrics {

/// Summary of one (scheduler, scenario) cell across replications.
struct CellSummary {
  std::string scheduler;        ///< display name (PN, ZO, EF, ...)
  std::size_t replications = 0; ///< number of runs aggregated
  util::Summary makespan;       ///< makespan distribution
  util::Summary efficiency;     ///< efficiency distribution
  util::Summary sched_wall;     ///< scheduler wall-clock seconds
  util::Summary response;       ///< mean task response time
  util::Summary invocations;    ///< scheduler invocations per run
  util::Summary requeued;       ///< tasks requeued by failures per run
  util::Summary completed;      ///< tasks completed per run
  /// Max over runs of the fast-mode tolerance-audit deviation
  /// (sim::SimulationResult::audit_max_deviation). 0.0 in exact mode.
  double audit_max_deviation = 0.0;
};

/// Aggregates `runs` into a CellSummary labelled `scheduler`.
CellSummary aggregate(const std::string& scheduler,
                      std::span<const sim::SimulationResult> runs);

/// Per-processor load-imbalance measure of one run: coefficient of
/// variation of busy time across processors (0 = perfectly balanced).
double busy_time_cv(const sim::SimulationResult& r);

/// Jain's fairness index over per-processor busy time, in (0, 1];
/// 1 = perfectly balanced.
double jain_fairness(const sim::SimulationResult& r);

}  // namespace gasched::metrics
