#include "metrics/significance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace gasched::metrics {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

MannWhitneyResult mann_whitney(std::span<const double> a,
                               std::span<const double> b) {
  const std::size_t na = a.size(), nb = b.size();
  if (na < 2 || nb < 2) {
    throw std::invalid_argument("mann_whitney: need >= 2 samples each");
  }
  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double v;
    bool from_a;
  };
  std::vector<Tagged> pool;
  pool.reserve(na + nb);
  for (const double v : a) pool.push_back({v, true});
  for (const double v : b) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  const double n = static_cast<double>(na + nb);
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // Σ (t³ − t) over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) ++j;
    const double midrank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    const auto t = static_cast<double>(j - i);
    if (t > 1.0) tie_term += t * t * t - t;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_a) rank_sum_a += midrank;
    }
    i = j;
  }

  MannWhitneyResult res;
  const double na_d = static_cast<double>(na);
  const double nb_d = static_cast<double>(nb);
  res.u = rank_sum_a - na_d * (na_d + 1.0) / 2.0;
  const double mean_u = na_d * nb_d / 2.0;
  const double var_u =
      na_d * nb_d / 12.0 *
      ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u > 0.0) {
    // Continuity correction toward the mean.
    const double cc = res.u > mean_u ? -0.5 : (res.u < mean_u ? 0.5 : 0.0);
    res.z = (res.u + cc - mean_u) / std::sqrt(var_u);
  }
  res.p_two_sided = 2.0 * (1.0 - normal_cdf(std::abs(res.z)));
  res.p_two_sided = std::clamp(res.p_two_sided, 0.0, 1.0);
  // P(A < B) = 1 − U/(na·nb) since U counts pairs where a > b (plus half
  // ties), derived from the rank-sum form above.
  res.prob_a_less = 1.0 - res.u / (na_d * nb_d);
  return res;
}

BootstrapCi bootstrap_mean_diff(std::span<const double> a,
                                std::span<const double> b, double level,
                                std::size_t resamples, std::uint64_t seed) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("bootstrap_mean_diff: empty sample");
  }
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("bootstrap_mean_diff: level in (0,1)");
  }
  auto mean = [](std::span<const double> xs) {
    double s = 0.0;
    for (const double v : xs) s += v;
    return s / static_cast<double>(xs.size());
  };
  BootstrapCi ci;
  ci.mean_diff = mean(a) - mean(b);

  util::Rng rng(seed);
  std::vector<double> diffs;
  diffs.reserve(resamples);
  std::vector<double> ra(a.size()), rb(b.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : ra) v = a[rng.index(a.size())];
    for (auto& v : rb) v = b[rng.index(b.size())];
    diffs.push_back(mean(ra) - mean(rb));
  }
  std::sort(diffs.begin(), diffs.end());
  const double alpha = 1.0 - level;
  const auto lo_idx = static_cast<std::size_t>(
      alpha / 2.0 * static_cast<double>(diffs.size() - 1));
  const auto hi_idx = static_cast<std::size_t>(
      (1.0 - alpha / 2.0) * static_cast<double>(diffs.size() - 1));
  ci.lo = diffs[lo_idx];
  ci.hi = diffs[hi_idx];
  return ci;
}

}  // namespace gasched::metrics
