#pragma once
// Streaming result sinks for experiment sweeps. The sweep executor
// (exp/sweep.hpp) pushes one SweepRow per grid cell, in job-list order,
// as soon as the cell and every cell before it have completed — so the
// ASCII table, CSV file, and JSONL file all observe the same
// deterministic sequence regardless of how many threads ran the grid,
// and a killed sweep keeps every cell already flushed.
//
// These sinks replace the hand-rolled table/CSV/JSON scaffolding the
// bench binaries used to carry individually (bench_common's
// maybe_write_csv/maybe_write_json remain only for bespoke series such
// as fig03's per-generation trajectories).

#include <filesystem>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/aggregate.hpp"
#include "util/csv.hpp"

namespace gasched::metrics {

/// Static description of a sweep, handed to every sink before any row.
struct SweepHeader {
  std::string name;                        ///< sweep display name
  std::vector<std::string> axes;           ///< axis names, slowest first
  std::vector<std::string> extra_columns;  ///< declared custom columns
};

/// One executed grid cell.
struct SweepRow {
  std::size_t index = 0;  ///< position in the flattened job list
  /// Axis coordinates, parallel to SweepHeader::axes: (axis, label).
  std::vector<std::pair<std::string, std::string>> coords;
  /// Canonical scheduler name; empty for custom-runner cells.
  std::string scheduler;
  /// Aggregated replications (default-constructed when the cell failed).
  CellSummary cell;
  /// Custom-runner payload, matched to SweepHeader::extra_columns by name.
  std::vector<std::pair<std::string, double>> extras;
  /// Non-empty when the cell threw; the row still streams so a partial
  /// grid is inspectable.
  std::string error;

  bool ok() const noexcept { return error.empty(); }
  /// The extras value named `column`, or `fallback` when absent.
  double extra(const std::string& column, double fallback = 0.0) const;
};

/// Receives sweep rows in deterministic job order. Implementations must
/// tolerate begin→end with zero rows.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Called once before any row.
  virtual void begin(const SweepHeader& header);
  /// Called once per cell, in job-list order, during execution.
  virtual void row(const SweepRow& row) = 0;
  /// Called once after the last row.
  virtual void end();
};

/// Accumulates rows and renders one right-aligned ASCII table at end().
/// Columns adapt to content: axes, scheduler (when any row names one),
/// the populated summary statistics, declared extras, and an error
/// column when any cell failed.
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;
  void end() override;

 private:
  std::ostream& os_;
  SweepHeader header_;
  std::vector<SweepRow> rows_;
};

/// Crash-safe CSV writer: opens at begin() (header row), appends one
/// data row per cell and flushes it immediately, so a killed sweep
/// keeps every completed cell. Columns are fixed up front:
///   index, <axes...>, scheduler, replications, makespan_mean,
///   makespan_ci95, efficiency_mean, response_mean, invocations_mean,
///   requeued_mean, <extras...>, error
/// Wall-clock statistics are deliberately excluded: the file must be
/// byte-identical across thread counts and runs (the tables keep them).
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::filesystem::path path);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  SweepHeader header_;
  std::unique_ptr<util::CsvWriter> writer_;
};

/// Crash-safe JSON writer: one self-contained JSON object per line
/// (JSON Lines), flushed per row. Each line carries the sweep name,
/// cell index, coordinates, the full aggregated cell (report_json
/// schema, wall-clock included), extras, and the error string if any.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::filesystem::path path);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  SweepHeader header_;
  std::unique_ptr<std::ofstream> out_;
};

}  // namespace gasched::metrics
