#pragma once
/// \file
/// Streaming result sinks for experiment sweeps.
///
/// The sweep executor (exp/sweep.hpp) pushes one SweepRow per grid cell,
/// in job-list order, as soon as the cell and every cell before it have
/// completed. Invariants every implementation and caller can rely on:
///
///  - **Deterministic row order.** Sinks observe rows in the flattened
///    job-list order regardless of how many threads ran the grid or
///    which cells finished first; the ASCII table, CSV file, and JSONL
///    file all see the same sequence.
///  - **Row-flush crash safety.** The file sinks write and flush each
///    row as it arrives, so a killed sweep keeps every cell already
///    flushed on disk — the file is always a valid header plus a prefix
///    of complete rows (plus at most one partial line from a kill
///    mid-write, which the resume scan discards).
///  - **Resumability.** A file sink opened with SinkMode::kResume
///    pre-scans its existing file, records which cell indices are
///    already present, truncates any partial trailing line, and appends
///    only rows it does not hold. The sweep executor skips cells present
///    in *every* resumable sink, so a resumed run's final CSV is
///    byte-identical to an uninterrupted one.
///  - **Thread-count-independent bytes.** The CSV sink deliberately
///    excludes wall-clock statistics so its files are byte-identical
///    across thread counts, machines (for sharded runs), and
///    kill/resume cycles; the table and JSONL keep wall-clock columns.
///
/// These sinks replace the hand-rolled table/CSV/JSON scaffolding the
/// bench binaries used to carry individually (bench_common's
/// maybe_write_csv/maybe_write_json remain only for bespoke series).

#include <cstddef>
#include <filesystem>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "metrics/aggregate.hpp"
#include "util/csv.hpp"

namespace gasched::metrics {

/// Static description of a sweep, handed to every sink before any row.
struct SweepHeader {
  std::string name;                        ///< sweep display name
  std::vector<std::string> axes;           ///< axis names, slowest first
  std::vector<std::string> extra_columns;  ///< declared custom columns
};

/// One executed grid cell.
struct SweepRow {
  std::size_t index = 0;  ///< position in the flattened job list
  /// Axis coordinates, parallel to SweepHeader::axes: (axis, label).
  std::vector<std::pair<std::string, std::string>> coords;
  /// Canonical scheduler name; empty for custom-runner cells.
  std::string scheduler;
  /// Aggregated replications (default-constructed when the cell failed).
  CellSummary cell;
  /// Custom-runner payload, matched to SweepHeader::extra_columns by name.
  std::vector<std::pair<std::string, double>> extras;
  /// Non-empty when the cell threw; the row still streams so a partial
  /// grid is inspectable.
  std::string error;
  /// True when the executor skipped this cell (resumed from an existing
  /// sink file, or outside the active shard). Skipped rows carry no
  /// summary and are never delivered to sinks.
  bool skipped = false;

  bool ok() const noexcept { return error.empty(); }
  /// The extras value named `column`, or `fallback` when absent.
  double extra(const std::string& column, double fallback = 0.0) const;
};

/// The exact column list CsvSink writes for a sweep with `header`:
/// index, axes (minus a "scheduler" axis, which the fixed scheduler
/// column already carries), the fixed summary columns, the declared
/// extras, error. Shared with `figset plot` (emitted plot scripts may
/// reference these names and nothing else) and its smoke test.
std::vector<std::string> csv_columns(SweepHeader header);

/// How a file sink treats an existing file at its path.
enum class SinkMode {
  kTruncate,  ///< start fresh (the default)
  kResume,    ///< pre-scan, keep complete rows, append only missing ones
};

/// Receives sweep rows in deterministic job order. Implementations must
/// tolerate begin→end with zero rows.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Called once before any row.
  virtual void begin(const SweepHeader& header);
  /// Called once per cell, in job-list order, during execution.
  virtual void row(const SweepRow& row) = 0;
  /// Called once after the last row.
  virtual void end();
  /// After begin(): the cell indices this sink already holds from a
  /// previous run, or nullptr for passive sinks (tables, progress) that
  /// never constrain resumption. File sinks always return a set — empty
  /// in kTruncate mode — and the sweep executor only skips cells present
  /// in every non-passive sink, so no file ends up with missing rows.
  virtual const std::set<std::size_t>* resumed() const { return nullptr; }
};

/// Accumulates rows and renders one right-aligned ASCII table at end().
/// Columns adapt to content: axes, scheduler (when any row names one),
/// the populated summary statistics, declared extras, and an error
/// column when any cell failed.
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;
  void end() override;

 private:
  std::ostream& os_;
  SweepHeader header_;
  std::vector<SweepRow> rows_;
};

/// Crash-safe CSV writer: opens at begin() (header row), appends one
/// data row per cell and flushes it immediately, so a killed sweep
/// keeps every completed cell. Columns are fixed up front:
///   index, <axes...>, scheduler, replications, makespan_mean,
///   makespan_ci95, efficiency_mean, response_mean, invocations_mean,
///   requeued_mean, <extras...>, error
/// Wall-clock statistics are deliberately excluded: the file must be
/// byte-identical across thread counts and runs (the tables keep them).
///
/// In SinkMode::kResume the existing file is scanned at begin(): the
/// header row must match the sweep's schema byte-for-byte (throws
/// std::runtime_error otherwise), complete data rows register their cell
/// index in resumed(), a partial trailing line (kill mid-write) is
/// truncated away, and new rows are appended after the survivors.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::filesystem::path path,
                   SinkMode mode = SinkMode::kTruncate);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;
  const std::set<std::size_t>* resumed() const override { return &present_; }

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  SinkMode mode_;
  SweepHeader header_;
  std::set<std::size_t> present_;
  std::unique_ptr<util::CsvWriter> writer_;
};

/// Crash-safe JSON writer: one self-contained JSON object per line
/// (JSON Lines), flushed per row. Each line carries the sweep name,
/// cell index, coordinates, the full aggregated cell (report_json
/// schema, wall-clock included), extras, and the error string if any.
///
/// SinkMode::kResume scans the existing file like CsvSink does: lines
/// must be complete objects for this sweep (throws on a name mismatch),
/// their indices register in resumed(), and a partial trailing line is
/// truncated. Note that resumed JSONL files are *not* byte-identical to
/// fresh runs — they contain wall-clock numbers; only the row set and
/// order are reproduced.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::filesystem::path path,
                     SinkMode mode = SinkMode::kTruncate);
  void begin(const SweepHeader& header) override;
  void row(const SweepRow& row) override;
  const std::set<std::size_t>* resumed() const override { return &present_; }

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  SinkMode mode_;
  SweepHeader header_;
  std::set<std::size_t> present_;
  std::unique_ptr<std::ofstream> out_;
};

}  // namespace gasched::metrics
