#pragma once
// Live in-process serving runtime: the paper's §6 future work ("test our
// scheduler under real-world conditions") grown from a drain-a-vector
// demo into a long-lived master/worker serving benchmark.
//
// The runtime is split into a data plane and a control plane:
//
//  * Data plane — per worker, two preallocated lock-free SPSC descriptor
//    rings (rt/ring.hpp): an inbox carrying fixed-size task descriptors
//    master → worker and an outbox carrying completion descriptors back.
//    The steady-state dispatch path (admit → route → ring push → execute
//    → completion reap → latency record) performs ZERO heap allocations
//    and ZERO mutex acquisitions. Workers spin on their inbox while
//    loaded and fall back to a parked condvar wait (util/park.hpp) only
//    when idle; the master pays one fence + one relaxed load per wake
//    check, never a lock, while workers are busy.
//  * Control plane — everything else, owned by the single master thread
//    (the thread calling submit()/drain()/serve()): the unscheduled
//    queue, scheduling-policy invocation, per-worker rate/latency
//    estimators, spill staging for ring overflow, accounting. No
//    synchronisation needed: workers never touch it.
//
// Two operating modes share the planes:
//
//  * Batch mode (submit()/drain()) — the original §3 protocol: any
//    sim::SchedulingPolicy (PN/ZO/EF/SA/...) consumes the unscheduled
//    queue and its assignment is materialised into the rings.
//  * Serve mode (serve()) — an open-loop arrival source at configurable
//    λ(t) (workload/arrival.hpp presets: constant, diurnal, ramp, flash
//    crowd) feeds a bounded admission queue with a shed-or-block overload
//    policy; per-task routing policies (round-robin / least-loaded /
//    fastest-drain — the immediate-mode counterparts of the paper's RR,
//    LL and EF) dispatch into the rings; a LatencyRecorder reports
//    p50/p99/p999 scheduling, queueing and sojourn latency.
//
// Each worker executes real floating-point work (a calibrated
// multiply-add kernel), optionally slowed by a per-worker speed factor;
// dispatch latency can be emulated per worker (the mean is jittered
// ±20%; a zero mean skips the RNG draw entirely, so the zero-latency
// path is RNG-stream-free). The runtime is wall-clock driven and
// therefore not bit-reproducible; tests assert completion, accounting,
// and qualitative behaviour (docs/runtime.md).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/params.hpp"
#include "rt/latency.hpp"
#include "rt/ring.hpp"
#include "sim/policy.hpp"
#include "util/park.hpp"
#include "util/rng.hpp"
#include "util/smoothing.hpp"
#include "workload/arrival.hpp"
#include "workload/generator.hpp"
#include "workload/task.hpp"

namespace gasched::rt {

/// Runtime configuration.
struct RuntimeConfig {
  /// Relative speed of each worker (1.0 = full host speed); the vector's
  /// length is the worker count. Empty = 4 equal workers.
  std::vector<double> worker_speeds;
  /// Scales task sizes: a task of S MFLOPs executes S * work_scale
  /// million floating-point operations for real. Keep small in tests.
  double work_scale = 0.01;
  /// Emulated mean dispatch latency per worker (seconds of sleep before a
  /// task starts); drawn per dispatch as uniform ±20% around the mean.
  /// A zero mean performs no RNG draw. Empty = no emulated latency.
  std::vector<double> dispatch_latency;
  /// Batch scheduling trigger: invoke the policy whenever at least this
  /// many tasks are waiting (and on drain). Batch mode only.
  std::size_t min_batch_trigger = 1;
  /// Seed for the runtime's internal RNG (latency jitter + policy +
  /// serve-mode arrivals).
  std::uint64_t seed = 1;
  /// Per-worker SPSC ring capacity (rounded up to a power of two). Also
  /// bounds each worker's in-flight descriptors.
  std::size_t ring_capacity = 1024;
  /// Empty inbox polls a worker performs before parking.
  std::size_t spin_polls = 4096;
};

/// Per-worker accounting.
struct WorkerStats {
  std::size_t tasks = 0;       ///< tasks completed
  double work_mflops = 0.0;    ///< nominal MFLOPs completed
  double busy_seconds = 0.0;   ///< wall time spent in the compute kernel
  double comm_seconds = 0.0;   ///< wall time spent in emulated dispatch
};

/// Result of a drained runtime (batch mode).
struct RuntimeResult {
  double makespan_seconds = 0.0;  ///< submit-to-last-completion wall time
  std::size_t tasks_completed = 0;
  std::vector<WorkerStats> per_worker;
  std::size_t scheduler_invocations = 0;
};

/// Serve-mode routing policy: which worker gets the next admitted task.
/// Immediate-mode counterparts of the paper's RR / LL / EF.
enum class RoutePolicy {
  kRoundRobin,    ///< "rr": cyclic, skipping workers with a full inbox
  kLeastLoaded,   ///< "least_loaded": fewest pending MFLOPs
  kFastestDrain,  ///< "fastest": smallest pending/rate drain time
};

/// Parses a routing-policy name. Throws std::runtime_error listing the
/// valid names ("rr", "least_loaded", "fastest") on an unknown one.
RoutePolicy parse_route_policy(const std::string& name);

/// Serve-mode configuration: the open-loop arrival stream, the bounded
/// admission queue, and the routing policy.
struct ServeConfig {
  /// Wall-clock length of the arrival window (seconds). Admitted tasks
  /// still in flight when it closes are drained before reporting.
  double duration_s = 5.0;
  /// Base arrival rate λ in tasks per wall-clock second.
  double rate = 1000.0;
  /// Arrival preset: "constant", "diurnal", "ramp", "flash" (see
  /// workload::make_rate_function; shape keys in arrival_params). Used
  /// only when rate_function is null.
  std::string arrival = "constant";
  /// Shape keys for the preset (arrival_amplitude, arrival_period, ...).
  exp::Params arrival_params;
  /// Prebuilt λ(t), overriding `arrival`/`arrival_params` when set.
  std::shared_ptr<const workload::RateFunction> rate_function;
  /// Routing policy name ("rr", "least_loaded", "fastest").
  std::string policy = "rr";
  /// Tasks routed per master loop iteration (admission batching).
  std::size_t admission_batch = 32;
  /// Bounded admission-queue capacity — the backpressure point.
  std::size_t queue_capacity = 4096;
  /// Overload policy: true = shed (drop the arrival, count it), false =
  /// block (pause the arrival clock until space frees — closed-loop
  /// under overload).
  bool shed = true;
};

/// Result of one serve() window.
struct ServeResult {
  double duration_s = 0.0;        ///< window + drain wall time
  std::uint64_t offered = 0;      ///< arrivals generated by the source
  std::uint64_t admitted = 0;     ///< accepted into the admission queue
  std::uint64_t shed = 0;         ///< dropped by the overload policy
  std::uint64_t completed = 0;    ///< finished execution
  double throughput_per_sec = 0;  ///< completed / duration
  LatencySummary sched_latency;   ///< arrival-due → ring push
  LatencySummary queue_latency;   ///< ring push → execution start
  LatencySummary sojourn;         ///< arrival-due → completion
  std::vector<WorkerStats> per_worker;
};

/// The live master/worker runtime.
class Runtime {
 public:
  /// Starts the worker threads. The policy drives batch mode
  /// (submit()/drain()) and is invoked from the caller's thread; it must
  /// be non-null even for serve-only use (serve() ignores it).
  Runtime(RuntimeConfig cfg, std::unique_ptr<sim::SchedulingPolicy> policy);

  /// Stops all workers (discarding any unfinished work).
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Batch mode: enqueues one task; may trigger a scheduling round.
  void submit(const workload::Task& task);

  /// Batch mode: blocks until every submitted task has completed and
  /// returns the accounting. The runtime remains usable afterwards.
  RuntimeResult drain();

  /// Serve mode: runs an open-loop arrival window against the worker
  /// pool, drawing task sizes from `sizes`. The steady-state loop is
  /// allocation- and lock-free. May be called repeatedly; each call
  /// reports its own window. Must not be mixed with un-drained submit()s.
  ServeResult serve(const ServeConfig& cfg,
                    const workload::SizeDistribution& sizes);

  /// Number of workers.
  std::size_t workers() const noexcept { return workers_.size(); }

  /// Measured host compute rate (Mflop/s) from the startup calibration.
  double host_mflops() const noexcept { return host_mflops_; }

 private:
  /// Fixed-size task descriptor carried master → worker. POD, copied by
  /// value through the ring.
  struct TaskDesc {
    workload::TaskId id = workload::kInvalidTask;
    double size_mflops = 0.0;
    double latency_s = 0.0;          ///< emulated dispatch latency
    std::uint64_t admit_ns = 0;      ///< arrival-due / submit instant
    std::uint64_t dispatch_ns = 0;   ///< ring-push instant
  };

  /// Completion descriptor carried worker → master.
  struct Completion {
    workload::TaskId id = workload::kInvalidTask;
    double size_mflops = 0.0;
    double latency_s = 0.0;          ///< emulated latency actually slept
    double exec_s = 0.0;             ///< kernel wall time
    std::uint64_t admit_ns = 0;
    std::uint64_t dispatch_ns = 0;
    std::uint64_t start_ns = 0;      ///< worker picked the task up
    std::uint64_t done_ns = 0;
  };

  struct Worker {
    // Data plane (shared with the worker thread through the rings only).
    SpscRing<TaskDesc> inbox;
    SpscRing<Completion> outbox;
    util::Parker parker;
    std::thread thread;
    double speed = 1.0;

    // Control plane — master-thread-owned; the worker thread never
    // touches anything below.
    double pending_mflops = 0.0;   ///< dispatched + spilled, not completed
    std::size_t inflight = 0;      ///< ring-resident descriptors
    WorkerStats stats;
    util::Smoother rate_est{0.5};
    util::Smoother comm_est{0.5};
    util::Rng jitter_rng{0};       ///< latency jitter substream
    std::deque<TaskDesc> spill;    ///< staging when the inbox is full

    Worker(std::size_t ring_capacity)
        : inbox(ring_capacity), outbox(ring_capacity) {}
  };

  void worker_loop(std::size_t index);
  void run_task(Worker& w, const TaskDesc& desc);

  // Master-thread helpers.
  std::uint64_t now_ns() const noexcept;
  double emulated_latency(Worker& w, std::size_t index);
  void dispatch(std::size_t index, TaskDesc desc);
  void flush_spill(std::size_t index);
  std::size_t reap();                   ///< drain all outboxes
  void schedule_batch();                ///< batch mode: invoke the policy
  sim::SystemView build_view();
  std::size_t route(RoutePolicy policy, double size_mflops);

  RuntimeConfig cfg_;
  std::unique_ptr<sim::SchedulingPolicy> policy_;
  util::Rng rng_;
  double host_mflops_ = 0.0;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  // Batch-mode master state.
  std::deque<workload::Task> unscheduled_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t invocations_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t last_completion_ns_ = 0;

  // Serve-mode master state (preallocated once, reused across windows).
  struct Pending {
    workload::TaskId id;
    double size_mflops;
    std::uint64_t due_ns;
  };
  std::vector<Pending> admission_;      ///< circular buffer
  std::size_t admit_head_ = 0;
  std::size_t admit_count_ = 0;
  std::size_t rr_cursor_ = 0;
  workload::TaskId serve_next_id_ = 0;
  std::vector<std::uint8_t> touched_;   ///< workers to notify this round
  LatencyRecorder recorder_;
  bool serve_recording_ = false;        ///< reap() records latencies
};

/// Executes approximately `mflops` million floating-point operations and
/// returns a value that depends on them (defeating dead-code
/// elimination). Exposed for calibration tests.
double burn_mflops(double mflops);

}  // namespace gasched::rt
