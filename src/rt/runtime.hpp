#pragma once
// Live in-process runtime: the paper's §6 future work ("test our scheduler
// under real-world conditions") realised as a miniature master/worker
// system inside one process.
//
//  * Each worker is an OS thread that executes real floating-point work
//    (a calibrated multiply-add kernel), optionally slowed by a per-worker
//    speed factor to emulate heterogeneous machines.
//  * The master owns the unscheduled queue and one future queue per
//    worker (the §3 design), measures each worker's rate from completed
//    work, smooths observed dispatch latencies with Γ, and drives *any*
//    sim::SchedulingPolicy — the exact same PN/ZO/EF/... objects used in
//    simulation run unmodified against real threads.
//  * Dispatch latency can be emulated (per-link mean sleep) so the
//    comm-aware scheduler has something to predict.
//
// The runtime is intentionally wall-clock driven and therefore not
// bit-reproducible; tests assert completion, accounting, and sanity
// rather than exact values.

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/policy.hpp"
#include "util/rng.hpp"
#include "util/smoothing.hpp"
#include "workload/task.hpp"

namespace gasched::rt {

/// Runtime configuration.
struct RuntimeConfig {
  /// Relative speed of each worker (1.0 = full host speed); the vector's
  /// length is the worker count. Empty = 4 equal workers.
  std::vector<double> worker_speeds;
  /// Scales task sizes: a task of S MFLOPs executes S * work_scale
  /// million floating-point operations for real. Keep small in tests.
  double work_scale = 0.01;
  /// Emulated mean dispatch latency per worker (seconds of sleep before a
  /// task starts); drawn per dispatch as uniform ±20% around the mean.
  /// Empty = no emulated latency.
  std::vector<double> dispatch_latency;
  /// Batch scheduling trigger: invoke the policy whenever at least this
  /// many tasks are waiting (and on drain).
  std::size_t min_batch_trigger = 1;
  /// Seed for the runtime's internal RNG (latency jitter + policy).
  std::uint64_t seed = 1;
};

/// Per-worker accounting.
struct WorkerStats {
  std::size_t tasks = 0;       ///< tasks completed
  double work_mflops = 0.0;    ///< nominal MFLOPs completed
  double busy_seconds = 0.0;   ///< wall time spent in the compute kernel
  double comm_seconds = 0.0;   ///< wall time spent in emulated dispatch
};

/// Result of a drained runtime.
struct RuntimeResult {
  double makespan_seconds = 0.0;  ///< submit-to-last-completion wall time
  std::size_t tasks_completed = 0;
  std::vector<WorkerStats> per_worker;
  std::size_t scheduler_invocations = 0;
};

/// The live master/worker runtime.
class Runtime {
 public:
  /// Starts the worker threads. The policy is owned by the runtime and
  /// invoked from the caller's thread inside submit()/drain().
  Runtime(RuntimeConfig cfg, std::unique_ptr<sim::SchedulingPolicy> policy);

  /// Stops all workers (discarding any unfinished work).
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Enqueues one task; may trigger a scheduling round.
  void submit(const workload::Task& task);

  /// Blocks until every submitted task has completed and returns the
  /// accounting. The runtime remains usable afterwards.
  RuntimeResult drain();

  /// Number of workers.
  std::size_t workers() const noexcept { return workers_.size(); }

  /// Measured host compute rate (Mflop/s) from the startup calibration.
  double host_mflops() const noexcept { return host_mflops_; }

 private:
  struct Worker {
    std::thread thread;
    std::deque<workload::Task> queue;  // future queue (mutex-guarded)
    double speed = 1.0;
    double pending_mflops = 0.0;
    WorkerStats stats;
    util::Smoother rate_est{0.5};
    util::Smoother comm_est{0.5};
    util::Rng jitter_rng{0};  // per-worker stream for latency jitter
  };

  void worker_loop(std::size_t index);
  void schedule_locked();  // requires mu_ held
  sim::SystemView build_view_locked();

  RuntimeConfig cfg_;
  std::unique_ptr<sim::SchedulingPolicy> policy_;
  util::Rng rng_;
  double host_mflops_ = 0.0;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for queue items
  std::condition_variable drain_cv_;  // drain() waits for completion
  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<workload::Task> unscheduled_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t invocations_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::chrono::steady_clock::time_point last_completion_;
  bool stopping_ = false;
};

/// Executes approximately `mflops` million floating-point operations and
/// returns a value that depends on them (defeating dead-code
/// elimination). Exposed for calibration tests.
double burn_mflops(double mflops);

}  // namespace gasched::rt
