#include "rt/serve_config.hpp"

#include <sstream>
#include <stdexcept>

#include "exp/params.hpp"
#include "workload/arrival.hpp"

namespace gasched::rt {

namespace {

// Parses "1.0, 0.5, 0.25" into speed factors.
std::vector<double> parse_speeds(const std::string& text) {
  std::vector<double> speeds;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      speeds.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw std::runtime_error("runtime.speeds: bad number '" + item + "'");
    }
  }
  if (speeds.empty()) {
    throw std::runtime_error("runtime.speeds: empty list");
  }
  return speeds;
}

}  // namespace

ServeSetup serve_setup_from_config(const util::Config& cfg) {
  ServeSetup s;

  if (cfg.has("runtime.speeds")) {
    s.runtime.worker_speeds = parse_speeds(cfg.get("runtime.speeds", ""));
  } else {
    const auto workers = cfg.get_int("runtime.workers", 4);
    if (workers < 1) {
      throw std::runtime_error("runtime.workers must be >= 1");
    }
    s.runtime.worker_speeds.assign(static_cast<std::size_t>(workers), 1.0);
  }
  s.runtime.work_scale = cfg.get_double("runtime.work_scale", 0.01);
  const double latency = cfg.get_double("runtime.dispatch_latency", 0.0);
  if (latency < 0.0) {
    throw std::runtime_error("runtime.dispatch_latency must be >= 0");
  }
  if (latency > 0.0) {
    s.runtime.dispatch_latency.assign(s.runtime.worker_speeds.size(),
                                      latency);
  }
  const auto ring = cfg.get_int("runtime.ring_capacity", 1024);
  if (ring < 2) throw std::runtime_error("runtime.ring_capacity must be >= 2");
  s.runtime.ring_capacity = static_cast<std::size_t>(ring);
  const auto polls = cfg.get_int("runtime.spin_polls", 4096);
  if (polls < 0) throw std::runtime_error("runtime.spin_polls must be >= 0");
  s.runtime.spin_polls = static_cast<std::size_t>(polls);
  s.runtime.seed = static_cast<std::uint64_t>(cfg.get_int("runtime.seed", 1));

  s.serve.duration_s = cfg.get_double("runtime.duration", 5.0);
  s.serve.rate = cfg.get_double("runtime.rate", 1000.0);
  s.serve.policy = cfg.get("runtime.policy", "rr");
  parse_route_policy(s.serve.policy);  // eager: unknown names fail here
  s.serve.arrival = cfg.get("runtime.arrival", "constant");
  s.serve.arrival_params = exp::Params::from_config(cfg, "runtime");
  if (s.serve.arrival != "constant" && s.serve.arrival != "" &&
      s.serve.arrival != "poisson") {
    // Eager validation: an unknown preset throws here, listing every
    // valid name (workload::arrival_preset_names).
    workload::make_rate_function(s.serve.arrival, 1.0,
                                 s.serve.arrival_params);
  }
  const auto batch = cfg.get_int("runtime.admission_batch", 32);
  if (batch < 1) {
    throw std::runtime_error("runtime.admission_batch must be >= 1");
  }
  s.serve.admission_batch = static_cast<std::size_t>(batch);
  const auto qcap = cfg.get_int("runtime.queue_capacity", 4096);
  if (qcap < 1) {
    throw std::runtime_error("runtime.queue_capacity must be >= 1");
  }
  s.serve.queue_capacity = static_cast<std::size_t>(qcap);
  const std::string overload = cfg.get("runtime.overload", "shed");
  if (overload == "shed") {
    s.serve.shed = true;
  } else if (overload == "block") {
    s.serve.shed = false;
  } else {
    throw std::runtime_error("unknown overload mode '" + overload +
                             "' (valid: shed, block)");
  }
  return s;
}

}  // namespace gasched::rt
