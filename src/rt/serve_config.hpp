#pragma once
// INI configuration for the serving runtime: the [runtime] section maps
// onto RuntimeConfig + ServeConfig so a serving benchmark is described by
// the same declarative scenario files as the simulations
// (run_scenario --serve).
//
//   [runtime]
//   workers = 4              # worker thread count (all full speed), or:
//   speeds = 1.0, 0.5, 0.25  # explicit per-worker speed factors (0, 1]
//   work_scale = 0.01        # real MFLOPs executed per nominal MFLOP
//   dispatch_latency = 0     # emulated mean dispatch latency (s), all
//                            # workers; 0 = none (and no RNG draw)
//   ring_capacity = 1024     # per-worker SPSC ring slots (rounded to 2^k)
//   spin_polls = 4096        # empty polls before a worker parks
//   seed = 1
//   policy = rr              # rr | least_loaded | fastest
//   rate = 1000              # base arrival rate λ (tasks/s)
//   arrival = constant       # constant | diurnal | ramp | flash
//   duration = 5             # arrival-window length (s)
//   admission_batch = 32     # tasks routed per master loop iteration
//   queue_capacity = 4096    # bounded admission queue (backpressure)
//   overload = shed          # shed | block
//
// plus the arrival_* shape keys of workload::make_rate_function
// (arrival_amplitude, arrival_period, arrival_start_factor, arrival_ramp,
// arrival_flash_mult, arrival_flash_start, arrival_flash_width,
// arrival_flash_every). Task sizes come from the regular [workload]
// section. Unknown policy / arrival / overload names throw listing the
// valid choices; validation is eager so a bad scenario file fails at
// parse time, not minutes into a run.

#include "rt/runtime.hpp"
#include "util/config.hpp"

namespace gasched::rt {

/// Everything needed to run one serving benchmark.
struct ServeSetup {
  RuntimeConfig runtime;
  ServeConfig serve;
};

/// Parses the [runtime] section of `cfg` (defaults above when absent).
/// Throws std::runtime_error on invalid values, unknown policy names,
/// unknown arrival presets, or unknown overload modes.
ServeSetup serve_setup_from_config(const util::Config& cfg);

}  // namespace gasched::rt
