#pragma once
// Latency accounting for the serving runtime. Three preallocated
// log-linear histograms, all owned and written by the master thread
// (workers ship raw timestamps back through the completion rings, so no
// recorder state is ever shared):
//
//   scheduling  arrival-due  → ring push   (admission queue + routing)
//   queueing    ring push    → first instruction of the task on a worker
//   sojourn     arrival-due  → completion  (end-to-end response time)
//
// record_*() never allocate; summaries carry the p50/p99/p999 the
// serving benchmark reports. Quantiles are bucket upper bounds —
// guaranteed >= the exact order statistic and within +6.25% of it (see
// util/histogram.hpp).

#include <cstdint>

#include "util/histogram.hpp"

namespace gasched::rt {

/// Percentile digest of one latency dimension, in seconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

class LatencyRecorder {
 public:
  /// Arrival-due → dispatch (nanoseconds).
  void record_sched(std::uint64_t ns) noexcept { sched_.record(ns); }
  /// Dispatch → execution start (nanoseconds).
  void record_queue(std::uint64_t ns) noexcept { queue_.record(ns); }
  /// Arrival-due → completion (nanoseconds).
  void record_sojourn(std::uint64_t ns) noexcept { sojourn_.record(ns); }

  LatencySummary sched() const noexcept { return summarize(sched_); }
  LatencySummary queue() const noexcept { return summarize(queue_); }
  LatencySummary sojourn() const noexcept { return summarize(sojourn_); }

  void reset() noexcept {
    sched_.reset();
    queue_.reset();
    sojourn_.reset();
  }

 private:
  static LatencySummary summarize(
      const util::LogLinearHistogram& h) noexcept {
    constexpr double kNs = 1e-9;
    LatencySummary s;
    s.count = h.count();
    s.mean = h.mean() * kNs;
    s.p50 = static_cast<double>(h.quantile(0.50)) * kNs;
    s.p99 = static_cast<double>(h.quantile(0.99)) * kNs;
    s.p999 = static_cast<double>(h.quantile(0.999)) * kNs;
    s.max = static_cast<double>(h.max()) * kNs;
    return s;
  }

  util::LogLinearHistogram sched_;
  util::LogLinearHistogram queue_;
  util::LogLinearHistogram sojourn_;
};

}  // namespace gasched::rt
