#pragma once
// Lock-free single-producer/single-consumer descriptor ring — the
// runtime's data plane.
//
// The design follows the fixed-memory-map / preallocated-descriptor-space
// idiom of hardware data planes (SRIO/DMA mailbox rings): one contiguous
// power-of-two slot array allocated once, two free-running cursors, and
// nothing else. Properties:
//
//  * capacity is rounded up to a power of two; index = cursor & mask, so
//    wrap-around is a mask, not a branch;
//  * the consumer cursor (head) and producer cursor (tail) live on
//    separate cache lines, each co-located with that side's *cached copy*
//    of the opposite cursor — steady-state push/pop touches exactly one
//    shared line plus the slot;
//  * acquire/release only: the producer's tail store releases the slot
//    write, the consumer's tail load acquires it (and symmetrically for
//    head on the full check). No CAS, no fences, no locks;
//  * cursors are free-running uint64s (no ABA, no wrap handling needed:
//    2^64 descriptors is > 500 years at 1G ops/s).
//
// T must be trivially copyable — descriptors are fixed-size PODs copied
// by value through the slot array (no pointers chased cross-thread, no
// lifetime protocol).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace gasched::rt {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing carries fixed-size trivially copyable "
                "descriptors only");

 public:
  /// Allocates the slot array once; capacity is min_capacity rounded up
  /// to a power of two (at least 2). Never allocates again.
  explicit SpscRing(std::size_t min_capacity)
      : mask_(round_up_pow2(min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Number of slots.
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side: appends one descriptor; false when full. Wait-free.
  bool try_push(const T& value) noexcept {
    const std::uint64_t tail =
        producer_.tail.load(std::memory_order_relaxed);
    if (tail - producer_.head_cache > mask_) {
      producer_.head_cache =
          consumer_.head.load(std::memory_order_acquire);
      if (tail - producer_.head_cache > mask_) return false;  // full
    }
    slots_[tail & mask_] = value;
    producer_.tail.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: removes the oldest descriptor; false when empty.
  /// Wait-free.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head =
        consumer_.head.load(std::memory_order_relaxed);
    if (head == consumer_.tail_cache) {
      consumer_.tail_cache =
          producer_.tail.load(std::memory_order_acquire);
      if (head == consumer_.tail_cache) return false;  // empty
    }
    out = slots_[head & mask_];
    consumer_.head.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: true when no descriptor is visible. Used by the
  /// park handshake's re-check (callable only from the consumer thread).
  bool consumer_empty() const noexcept {
    return consumer_.head.load(std::memory_order_relaxed) ==
           producer_.tail.load(std::memory_order_acquire);
  }

  /// Racy size estimate, callable from either side.
  std::size_t size_approx() const noexcept {
    const std::uint64_t tail =
        producer_.tail.load(std::memory_order_acquire);
    const std::uint64_t head =
        consumer_.head.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  struct alignas(64) ConsumerSide {
    std::atomic<std::uint64_t> head{0};  ///< next slot to pop
    std::uint64_t tail_cache = 0;        ///< consumer's view of tail
  };
  struct alignas(64) ProducerSide {
    std::atomic<std::uint64_t> tail{0};  ///< next slot to fill
    std::uint64_t head_cache = 0;        ///< producer's view of head
  };

  const std::uint64_t mask_;
  ConsumerSide consumer_;
  ProducerSide producer_;
  std::vector<T> slots_;
};

}  // namespace gasched::rt
