#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "sim/linpack.hpp"

namespace gasched::rt {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One spin-wait hint: tells the core we are polling, not computing.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

constexpr std::size_t kNoWorker = std::numeric_limits<std::size_t>::max();
}  // namespace

double burn_mflops(double mflops) {
  // 4 flops per iteration (two multiply-adds); the volatile sink defeats
  // dead-code elimination.
  const auto iters = static_cast<std::uint64_t>(mflops * 1e6 / 4.0);
  double a = 1.000000007, b = 0.999999991;
  for (std::uint64_t i = 0; i < iters; ++i) {
    a = a * b + 1e-9;
    b = b * a - 1e-9;
  }
  volatile double sink = a + b;
  return sink;
}

RoutePolicy parse_route_policy(const std::string& name) {
  if (name == "rr") return RoutePolicy::kRoundRobin;
  if (name == "least_loaded") return RoutePolicy::kLeastLoaded;
  if (name == "fastest") return RoutePolicy::kFastestDrain;
  throw std::runtime_error("unknown routing policy '" + name +
                           "' (valid: rr, least_loaded, fastest)");
}

Runtime::Runtime(RuntimeConfig cfg,
                 std::unique_ptr<sim::SchedulingPolicy> policy)
    : cfg_(std::move(cfg)), policy_(std::move(policy)), rng_(cfg_.seed) {
  if (!policy_) throw std::invalid_argument("Runtime: null policy");
  if (cfg_.worker_speeds.empty()) cfg_.worker_speeds.assign(4, 1.0);
  for (const double s : cfg_.worker_speeds) {
    if (!(s > 0.0) || s > 1.0) {
      throw std::invalid_argument("Runtime: worker speeds in (0, 1]");
    }
  }
  if (!(cfg_.work_scale > 0.0)) {
    throw std::invalid_argument("Runtime: work_scale must be > 0");
  }
  if (cfg_.ring_capacity < 2) {
    throw std::invalid_argument("Runtime: ring_capacity must be >= 2");
  }

  // Calibrate the host once with the Linpack-style benchmark (paper §3:
  // execution rates are Linpack-measured).
  util::Rng lin_rng(cfg_.seed ^ 0x11AC0FFEEull);
  host_mflops_ = sim::linpack_benchmark(96, lin_rng).mflops;
  if (!(host_mflops_ > 0.0)) host_mflops_ = 1000.0;

  epoch_ = Clock::now();
  workers_.reserve(cfg_.worker_speeds.size());
  for (std::size_t i = 0; i < cfg_.worker_speeds.size(); ++i) {
    auto w = std::make_unique<Worker>(cfg_.ring_capacity);
    w->speed = cfg_.worker_speeds[i];
    w->jitter_rng = util::Rng(cfg_.seed).split(7000 + i);
    workers_.push_back(std::move(w));
  }
  touched_.assign(workers_.size(), 0);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

Runtime::~Runtime() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->parker.notify();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::uint64_t Runtime::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch_)
          .count());
}

// ---------------------------------------------------------------------------
// Data plane: worker side.

void Runtime::worker_loop(std::size_t index) {
  Worker& w = *workers_[index];
  TaskDesc desc;
  for (;;) {
    if (w.inbox.try_pop(desc)) {
      run_task(w, desc);
      continue;
    }
    // Inbox empty: spin for a while — under load the next descriptor
    // arrives within the spin budget and we never touch a lock.
    bool got = false;
    for (std::size_t polls = cfg_.spin_polls; polls != 0; --polls) {
      cpu_pause();
      if (w.inbox.try_pop(desc)) {
        got = true;
        break;
      }
      if (stop_.load(std::memory_order_relaxed)) break;
    }
    if (got) {
      run_task(w, desc);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Idle: park. prepare()/consumer_empty()/park() is the lost-wakeup-
    // safe handshake documented in util/park.hpp.
    w.parker.prepare();
    if (stop_.load(std::memory_order_acquire) || !w.inbox.consumer_empty()) {
      w.parker.cancel();
      continue;
    }
    w.parker.park();
  }
}

void Runtime::run_task(Worker& w, const TaskDesc& desc) {
  const std::uint64_t start = now_ns();
  double slept = 0.0;
  if (desc.latency_s > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(desc.latency_s));
    slept = desc.latency_s;
  }
  const auto t0 = Clock::now();
  burn_mflops(desc.size_mflops * cfg_.work_scale / w.speed);
  const double exec = seconds_since(t0);

  Completion c;
  c.id = desc.id;
  c.size_mflops = desc.size_mflops;
  c.latency_s = slept;
  c.exec_s = exec;
  c.admit_ns = desc.admit_ns;
  c.dispatch_ns = desc.dispatch_ns;
  c.start_ns = start;
  c.done_ns = now_ns();
  // Cannot block in practice: the master caps in-flight descriptors at
  // the ring capacity, so the outbox always has room. The spin is a
  // safety net, not a protocol.
  while (!w.outbox.try_push(c)) cpu_pause();
}

// ---------------------------------------------------------------------------
// Control plane: master side (single-threaded, no locks anywhere below).

double Runtime::emulated_latency(Worker& w, std::size_t index) {
  if (index >= cfg_.dispatch_latency.size()) return 0.0;
  const double mean = cfg_.dispatch_latency[index];
  // A zero mean draws nothing: the zero-latency path is RNG-stream-free.
  if (!(mean > 0.0)) return 0.0;
  return w.jitter_rng.uniform(0.8 * mean, 1.2 * mean);
}

void Runtime::dispatch(std::size_t index, TaskDesc desc) {
  Worker& w = *workers_[index];
  w.pending_mflops += desc.size_mflops;
  if (w.spill.empty() && w.inflight < w.inbox.capacity()) {
    ++w.inflight;
    w.inbox.try_push(desc);  // cannot fail: inflight < capacity
  } else {
    w.spill.push_back(desc);  // batch mode overflow staging
  }
}

void Runtime::flush_spill(std::size_t index) {
  Worker& w = *workers_[index];
  bool any = false;
  while (!w.spill.empty() && w.inflight < w.inbox.capacity()) {
    TaskDesc desc = w.spill.front();
    w.spill.pop_front();
    desc.dispatch_ns = now_ns();
    ++w.inflight;
    w.inbox.try_push(desc);
    any = true;
  }
  if (any) w.parker.notify();
}

std::size_t Runtime::reap() {
  std::size_t reaped = 0;
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    Worker& w = *workers_[j];
    Completion c;
    while (w.outbox.try_pop(c)) {
      --w.inflight;
      w.pending_mflops -= c.size_mflops;
      if (w.pending_mflops < 0.0) w.pending_mflops = 0.0;
      w.stats.tasks += 1;
      w.stats.work_mflops += c.size_mflops;
      w.stats.busy_seconds += c.exec_s;
      w.stats.comm_seconds += c.latency_s;
      if (c.latency_s > 0.0) w.comm_est.observe(c.latency_s);
      if (c.exec_s > 0.0) w.rate_est.observe(c.size_mflops / c.exec_s);
      ++completed_;
      last_completion_ns_ = std::max(last_completion_ns_, c.done_ns);
      if (serve_recording_) {
        recorder_.record_queue(c.start_ns - c.dispatch_ns);
        recorder_.record_sojourn(c.done_ns - c.admit_ns);
      }
      ++reaped;
    }
    if (!w.spill.empty()) flush_spill(j);
  }
  return reaped;
}

sim::SystemView Runtime::build_view() {
  sim::SystemView view;
  view.now = seconds_since(epoch_);
  view.procs.resize(workers_.size());
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    auto& w = *workers_[j];
    auto& pv = view.procs[j];
    pv.id = static_cast<sim::ProcId>(j);
    // Prior: calibrated host rate, scaled by the worker's speed factor
    // and the work scale (nominal MFLOPs per wall second).
    const double prior = host_mflops_ * w.speed / cfg_.work_scale;
    pv.rate = w.rate_est.value_or(prior);
    pv.pending_mflops = w.pending_mflops;
    pv.comm_estimate = w.comm_est.value_or(0.0);
    pv.comm_observations = w.comm_est.count();
  }
  return view;
}

void Runtime::schedule_batch() {
  if (unscheduled_.empty()) return;
  // The policy consumes tasks from the queue and returns their ids;
  // index the payloads first so assignments can be materialised.
  std::unordered_map<workload::TaskId, workload::Task> index;
  index.reserve(unscheduled_.size());
  for (const auto& t : unscheduled_) index.emplace(t.id, t);

  const sim::SystemView view = build_view();
  const sim::BatchAssignment assignment =
      policy_->invoke(view, unscheduled_, rng_);
  ++invocations_;
  if (assignment.per_proc.size() > workers_.size()) {
    throw std::runtime_error("Runtime: assignment names unknown worker");
  }
  const std::uint64_t now = now_ns();
  for (std::size_t j = 0; j < assignment.per_proc.size(); ++j) {
    bool any = false;
    for (const workload::TaskId id : assignment.per_proc[j]) {
      const auto it = index.find(id);
      if (it == index.end()) {
        throw std::runtime_error("Runtime: assignment names unknown task");
      }
      TaskDesc desc;
      desc.id = id;
      desc.size_mflops = it->second.size_mflops;
      desc.latency_s = emulated_latency(*workers_[j], j);
      desc.admit_ns = now;
      desc.dispatch_ns = now;
      dispatch(j, desc);
      any = true;
    }
    if (any) workers_[j]->parker.notify();
  }
}

void Runtime::submit(const workload::Task& task) {
  reap();  // keep pending-load estimates fresh while submissions stream in
  unscheduled_.push_back(task);
  ++submitted_;
  if (unscheduled_.size() >= cfg_.min_batch_trigger) schedule_batch();
}

RuntimeResult Runtime::drain() {
  schedule_batch();  // flush anything below the batch trigger
  while (completed_ < submitted_) {
    const std::size_t reaped = reap();
    if (reaped > 0 && !unscheduled_.empty()) {
      // Mirror the engine's protocol: an idling worker with unscheduled
      // tasks outstanding triggers another scheduling round, so batch
      // policies that consumed only part of the queue make progress.
      for (const auto& w : workers_) {
        if (w->inflight == 0 && w->spill.empty()) {
          schedule_batch();
          break;
        }
      }
    }
    if (reaped == 0) std::this_thread::yield();
  }

  RuntimeResult result;
  result.makespan_seconds = static_cast<double>(last_completion_ns_) * 1e-9;
  result.tasks_completed = completed_;
  result.scheduler_invocations = invocations_;
  result.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) result.per_worker.push_back(w->stats);
  return result;
}

// ---------------------------------------------------------------------------
// Serve mode.

std::size_t Runtime::route(RoutePolicy policy, double size_mflops) {
  const std::size_t n = workers_.size();
  switch (policy) {
    case RoutePolicy::kRoundRobin: {
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t j = (rr_cursor_ + k) % n;
        if (workers_[j]->inflight < workers_[j]->inbox.capacity()) {
          rr_cursor_ = (j + 1) % n;
          return j;
        }
      }
      return kNoWorker;
    }
    case RoutePolicy::kLeastLoaded: {
      std::size_t best = kNoWorker;
      double best_pending = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        Worker& w = *workers_[j];
        if (w.inflight >= w.inbox.capacity()) continue;
        if (best == kNoWorker || w.pending_mflops < best_pending) {
          best = j;
          best_pending = w.pending_mflops;
        }
      }
      return best;
    }
    case RoutePolicy::kFastestDrain: {
      std::size_t best = kNoWorker;
      double best_eta = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        Worker& w = *workers_[j];
        if (w.inflight >= w.inbox.capacity()) continue;
        const double prior = host_mflops_ * w.speed / cfg_.work_scale;
        const double rate = w.rate_est.value_or(prior);
        const double eta =
            rate > 0.0 ? (w.pending_mflops + size_mflops) / rate : 1e300;
        if (best == kNoWorker || eta < best_eta) {
          best = j;
          best_eta = eta;
        }
      }
      return best;
    }
  }
  return kNoWorker;
}

ServeResult Runtime::serve(const ServeConfig& cfg,
                           const workload::SizeDistribution& sizes) {
  if (!(cfg.duration_s > 0.0)) {
    throw std::invalid_argument("serve: duration must be > 0");
  }
  if (!(cfg.rate > 0.0)) {
    throw std::invalid_argument("serve: rate must be > 0");
  }
  if (cfg.admission_batch == 0 || cfg.queue_capacity == 0) {
    throw std::invalid_argument(
        "serve: admission_batch and queue_capacity must be >= 1");
  }
  if (!unscheduled_.empty() || completed_ != submitted_) {
    throw std::logic_error("serve: pending batch-mode work; drain() first");
  }
  const RoutePolicy policy = parse_route_policy(cfg.policy);

  // Setup (allocations allowed here; the steady-state loop below is
  // allocation- and lock-free).
  std::shared_ptr<const workload::RateFunction> rate_fn = cfg.rate_function;
  if (!rate_fn && cfg.arrival != "constant" && cfg.arrival != "" &&
      cfg.arrival != "poisson") {
    rate_fn = workload::make_rate_function(cfg.arrival, cfg.rate,
                                           cfg.arrival_params);
  }
  workload::ArrivalSource source =
      rate_fn ? workload::ArrivalSource::thinned(*rate_fn)
              : workload::ArrivalSource::constant(1.0 / cfg.rate);
  admission_.resize(cfg.queue_capacity);
  admit_head_ = 0;
  admit_count_ = 0;
  rr_cursor_ = 0;
  recorder_.reset();
  serve_recording_ = true;
  std::vector<WorkerStats> baseline(workers_.size());
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    baseline[j] = workers_[j]->stats;
  }
  const std::uint64_t completed_at_start = completed_;

  std::uint64_t offered = 0, admitted = 0, shed = 0;
  const std::uint64_t t0 = now_ns();
  const double duration = cfg.duration_s;
  bool have_pending = false;
  double pending_arrival_s = 0.0;

  // Steady-state serving loop: admit due arrivals, route a batch into
  // the rings, reap completions. Zero allocations, zero mutexes.
  for (;;) {
    const double elapsed = static_cast<double>(now_ns() - t0) * 1e-9;
    const bool window_open = elapsed < duration;

    // 1) Admission: pull every arrival that is due by now.
    if (window_open) {
      for (;;) {
        if (!have_pending) {
          pending_arrival_s = source.next(rng_);
          have_pending = true;
        }
        if (pending_arrival_s > elapsed || pending_arrival_s > duration) {
          break;  // not due yet (or beyond the window)
        }
        ++offered;
        if (admit_count_ == cfg.queue_capacity) {
          if (cfg.shed) {
            ++shed;
            have_pending = false;
            continue;  // drop this arrival, keep the clock running
          }
          --offered;  // block: retry this arrival once space frees
          break;
        }
        Pending& p =
            admission_[(admit_head_ + admit_count_) % cfg.queue_capacity];
        p.id = serve_next_id_++;
        p.size_mflops = sizes.sample(rng_);
        p.due_ns = t0 + static_cast<std::uint64_t>(pending_arrival_s * 1e9);
        ++admit_count_;
        ++admitted;
        have_pending = false;
      }
    }

    // 2) Dispatch up to one admission batch into the rings.
    std::size_t dispatched = 0;
    while (dispatched < cfg.admission_batch && admit_count_ > 0) {
      const Pending& p = admission_[admit_head_];
      const std::size_t j = route(policy, p.size_mflops);
      if (j == kNoWorker) break;  // every ring full: backpressure
      const std::uint64_t dnow = now_ns();
      TaskDesc desc;
      desc.id = p.id;
      desc.size_mflops = p.size_mflops;
      desc.latency_s = emulated_latency(*workers_[j], j);
      desc.admit_ns = p.due_ns;
      desc.dispatch_ns = dnow;
      dispatch(j, desc);
      ++submitted_;
      recorder_.record_sched(dnow - p.due_ns);
      touched_[j] = 1;
      admit_head_ = (admit_head_ + 1) % cfg.queue_capacity;
      --admit_count_;
      ++dispatched;
    }
    if (dispatched > 0) {
      for (std::size_t j = 0; j < workers_.size(); ++j) {
        if (touched_[j]) {
          workers_[j]->parker.notify();
          touched_[j] = 0;
        }
      }
    }

    // 3) Reap completions (records queueing + sojourn latency).
    const std::size_t reaped = reap();

    // Exit: window closed and everything admitted has completed.
    if (!window_open && admit_count_ == 0 && completed_ == submitted_) {
      // A blocked arrival that was due inside the window but never found
      // queue space counts as shed.
      if (have_pending && pending_arrival_s <= duration && !cfg.shed) {
        ++offered;
        ++shed;
        have_pending = false;
      }
      break;
    }
    if (dispatched == 0 && reaped == 0) cpu_pause();
  }

  serve_recording_ = false;
  const double elapsed_total = static_cast<double>(now_ns() - t0) * 1e-9;

  ServeResult r;
  r.duration_s = elapsed_total;
  r.offered = offered;
  r.admitted = admitted;
  r.shed = shed;
  r.completed = completed_ - completed_at_start;
  r.throughput_per_sec =
      elapsed_total > 0.0 ? static_cast<double>(r.completed) / elapsed_total
                          : 0.0;
  r.sched_latency = recorder_.sched();
  r.queue_latency = recorder_.queue();
  r.sojourn = recorder_.sojourn();
  r.per_worker.resize(workers_.size());
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    const WorkerStats& now_stats = workers_[j]->stats;
    const WorkerStats& base = baseline[j];
    r.per_worker[j].tasks = now_stats.tasks - base.tasks;
    r.per_worker[j].work_mflops = now_stats.work_mflops - base.work_mflops;
    r.per_worker[j].busy_seconds =
        now_stats.busy_seconds - base.busy_seconds;
    r.per_worker[j].comm_seconds =
        now_stats.comm_seconds - base.comm_seconds;
  }
  return r;
}

}  // namespace gasched::rt
