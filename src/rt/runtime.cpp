#include "rt/runtime.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/linpack.hpp"

namespace gasched::rt {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

double burn_mflops(double mflops) {
  // 4 flops per iteration (two multiply-adds); the volatile sink defeats
  // dead-code elimination.
  const auto iters = static_cast<std::uint64_t>(mflops * 1e6 / 4.0);
  double a = 1.000000007, b = 0.999999991;
  for (std::uint64_t i = 0; i < iters; ++i) {
    a = a * b + 1e-9;
    b = b * a - 1e-9;
  }
  volatile double sink = a + b;
  return sink;
}

Runtime::Runtime(RuntimeConfig cfg,
                 std::unique_ptr<sim::SchedulingPolicy> policy)
    : cfg_(std::move(cfg)), policy_(std::move(policy)), rng_(cfg_.seed) {
  if (!policy_) throw std::invalid_argument("Runtime: null policy");
  if (cfg_.worker_speeds.empty()) cfg_.worker_speeds.assign(4, 1.0);
  for (const double s : cfg_.worker_speeds) {
    if (!(s > 0.0) || s > 1.0) {
      throw std::invalid_argument("Runtime: worker speeds in (0, 1]");
    }
  }
  if (!(cfg_.work_scale > 0.0)) {
    throw std::invalid_argument("Runtime: work_scale must be > 0");
  }

  // Calibrate the host once with the Linpack-style benchmark (paper §3:
  // execution rates are Linpack-measured).
  util::Rng lin_rng(cfg_.seed ^ 0x11AC0FFEEull);
  host_mflops_ = sim::linpack_benchmark(96, lin_rng).mflops;
  if (!(host_mflops_ > 0.0)) host_mflops_ = 1000.0;

  epoch_ = Clock::now();
  last_completion_ = epoch_;
  workers_.reserve(cfg_.worker_speeds.size());
  for (std::size_t i = 0; i < cfg_.worker_speeds.size(); ++i) {
    auto w = std::make_unique<Worker>();
    w->speed = cfg_.worker_speeds[i];
    w->jitter_rng = util::Rng(cfg_.seed).split(7000 + i);
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

sim::SystemView Runtime::build_view_locked() {
  sim::SystemView view;
  view.now = seconds_since(epoch_);
  view.procs.resize(workers_.size());
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    auto& w = *workers_[j];
    auto& pv = view.procs[j];
    pv.id = static_cast<sim::ProcId>(j);
    // Prior: calibrated host rate, scaled by the worker's speed factor
    // and the work scale (nominal MFLOPs per wall second).
    const double prior = host_mflops_ * w.speed / cfg_.work_scale;
    pv.rate = w.rate_est.value_or(prior);
    pv.pending_mflops = w.pending_mflops;
    pv.comm_estimate = w.comm_est.value_or(0.0);
    pv.comm_observations = w.comm_est.count();
  }
  return view;
}

void Runtime::schedule_locked() {
  if (unscheduled_.empty()) return;
  // The policy consumes tasks from the queue and returns their ids;
  // index the payloads first so assignments can be materialised.
  std::unordered_map<workload::TaskId, workload::Task> index;
  index.reserve(unscheduled_.size());
  for (const auto& t : unscheduled_) index.emplace(t.id, t);

  const sim::SystemView view = build_view_locked();
  const sim::BatchAssignment assignment =
      policy_->invoke(view, unscheduled_, rng_);
  ++invocations_;
  if (assignment.per_proc.size() > workers_.size()) {
    throw std::runtime_error("Runtime: assignment names unknown worker");
  }
  for (std::size_t j = 0; j < assignment.per_proc.size(); ++j) {
    auto& w = *workers_[j];
    for (const workload::TaskId id : assignment.per_proc[j]) {
      const auto it = index.find(id);
      if (it == index.end()) {
        throw std::runtime_error("Runtime: assignment names unknown task");
      }
      w.queue.push_back(it->second);
      w.pending_mflops += it->second.size_mflops;
    }
  }
}

void Runtime::submit(const workload::Task& task) {
  {
    std::lock_guard lk(mu_);
    unscheduled_.push_back(task);
    ++submitted_;
    if (unscheduled_.size() >= cfg_.min_batch_trigger) schedule_locked();
  }
  work_cv_.notify_all();
}

RuntimeResult Runtime::drain() {
  std::unique_lock lk(mu_);
  schedule_locked();  // flush anything below the batch trigger
  work_cv_.notify_all();
  drain_cv_.wait(lk, [this] { return completed_ == submitted_; });

  RuntimeResult result;
  result.makespan_seconds =
      std::chrono::duration<double>(last_completion_ - epoch_).count();
  result.tasks_completed = completed_;
  result.scheduler_invocations = invocations_;
  result.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) result.per_worker.push_back(w->stats);
  return result;
}

void Runtime::worker_loop(std::size_t index) {
  Worker& w = *workers_[index];
  for (;;) {
    workload::Task task;
    double latency = 0.0;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] { return stopping_ || !w.queue.empty(); });
      if (w.queue.empty()) return;  // stopping_ with nothing left to do
      task = w.queue.front();
      w.queue.pop_front();
      if (index < cfg_.dispatch_latency.size() &&
          cfg_.dispatch_latency[index] > 0.0) {
        const double mean = cfg_.dispatch_latency[index];
        latency = w.jitter_rng.uniform(0.8 * mean, 1.2 * mean);
      }
    }

    if (latency > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(latency));
    }
    const auto t0 = Clock::now();
    burn_mflops(task.size_mflops * cfg_.work_scale / w.speed);
    const double exec = seconds_since(t0);

    bool more_work_assigned = false;
    {
      std::lock_guard lk(mu_);
      w.pending_mflops -= task.size_mflops;
      if (w.pending_mflops < 0.0) w.pending_mflops = 0.0;
      w.stats.tasks += 1;
      w.stats.work_mflops += task.size_mflops;
      w.stats.busy_seconds += exec;
      w.stats.comm_seconds += latency;
      if (latency > 0.0) w.comm_est.observe(latency);
      if (exec > 0.0) w.rate_est.observe(task.size_mflops / exec);
      ++completed_;
      last_completion_ = Clock::now();
      if (completed_ == submitted_) drain_cv_.notify_all();
      // Mirror the engine's protocol: an idling worker with unscheduled
      // tasks outstanding triggers another scheduling round, so batch
      // policies that consumed only part of the queue make progress.
      if (!unscheduled_.empty() && w.queue.empty()) {
        schedule_locked();
        more_work_assigned = true;
      }
    }
    if (more_work_assigned) work_cv_.notify_all();
  }
}

}  // namespace gasched::rt
