#include "sched/register.hpp"

#include "exp/registry.hpp"
#include "sched/extra_heuristics.hpp"
#include "sched/heuristics.hpp"

namespace gasched::sched {

void register_builtin_schedulers(exp::SchedulerRegistry& registry) {
  using exp::SchedulerParams;
  const unsigned paper = exp::kSchedulerTagPaper;
  const unsigned baseline = exp::kSchedulerTagBaseline;

  registry.add({.name = "EF",
                .summary = "earliest finish: argmin (load + task) / rate, "
                           "immediate mode (§4.1)",
                .tags = paper,
                .rank = 0,
                .factory = [](const SchedulerParams&) { return make_ef(); }});
  registry.add({.name = "LL",
                .summary = "lightest loaded: argmin pending MFLOPs, "
                           "immediate mode (§4.1)",
                .tags = paper,
                .rank = 1,
                .factory = [](const SchedulerParams&) { return make_ll(); }});
  registry.add({.name = "RR",
                .summary = "round robin: cyclic assignment, no state "
                           "inspected (§4.1)",
                .tags = paper,
                .rank = 2,
                .factory = [](const SchedulerParams&) { return make_rr(); }});
  registry.add({.name = "MM",
                .summary = "min-min: FCFS batches sorted ascending by "
                           "size, earliest-finish placement (§4.1)",
                .tags = paper,
                .rank = 5,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_mm(
                          p.get_size("batch_size", exp::kDefaultBatchSize));
                    }});
  registry.add({.name = "MX",
                .summary = "max-min: FCFS batches sorted descending by "
                           "size, earliest-finish placement (§4.1)",
                .tags = paper,
                .rank = 6,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_mx(
                          p.get_size("batch_size", exp::kDefaultBatchSize));
                    }});
  registry.add({.name = "MET",
                .summary = "minimum execution time: fastest executor "
                           "regardless of load (Maheswaran et al.)",
                .tags = baseline,
                .rank = 7,
                .factory = [](const SchedulerParams&) { return make_met(); }});
  registry.add({.name = "KPB",
                .summary = "k-percent best: earliest finish among the "
                           "kpb_percent% fastest processors",
                .tags = baseline,
                .rank = 8,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_kpb(p.get_double(
                          "kpb_percent", exp::kDefaultKpbPercent));
                    }});
  registry.add({.name = "SUF",
                .summary = "sufferage: batch placement by largest "
                           "best-vs-second-best completion gap",
                .tags = baseline,
                .rank = 9,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_sufferage(
                          p.get_size("batch_size", exp::kDefaultBatchSize));
                    }});
  registry.add({.name = "OLB",
                .summary = "opportunistic load balancing: soonest-available "
                           "processor, task size ignored",
                .tags = baseline,
                .rank = 10,
                .factory = [](const SchedulerParams&) { return make_olb(); }});
  registry.add({.name = "DUP",
                .summary = "duplex: runs min-min and max-min per batch, "
                           "keeps the smaller estimated makespan",
                .tags = baseline,
                .rank = 11,
                .factory =
                    [](const SchedulerParams& p) {
                      return make_duplex(
                          p.get_size("batch_size", exp::kDefaultBatchSize));
                    }});
}

}  // namespace gasched::sched
