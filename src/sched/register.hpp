#pragma once
// Registry hookup for the list-scheduling heuristics (heuristics.hpp and
// extra_heuristics.hpp). Called once by exp::SchedulerRegistry when the
// registry is first touched.

namespace gasched::exp {
class SchedulerRegistry;
}

namespace gasched::sched {

/// Registers EF, LL, RR, MM, MX (§4.1) and the Maheswaran et al.
/// baselines MET, KPB, SUF, OLB, DUP.
void register_builtin_schedulers(exp::SchedulerRegistry& registry);

}  // namespace gasched::sched
