#include "sched/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gasched::sched {

namespace {

/// Processor with the earliest estimated finish time for `task` given the
/// working load vector.
sim::ProcId earliest_finish(const workload::Task& task,
                            const sim::SystemView& view,
                            const std::vector<double>& pending) {
  sim::ProcId best = 0;
  double best_time = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < view.size(); ++j) {
    const double rate = view.procs[j].rate;
    if (!(rate > 0.0)) continue;
    const double finish = (pending[j] + task.size_mflops) / rate;
    if (finish < best_time) {
      best_time = finish;
      best = static_cast<sim::ProcId>(j);
    }
  }
  return best;
}

}  // namespace

sim::ProcId EarliestFinishRule::place(const workload::Task& task,
                                      const sim::SystemView& view,
                                      const std::vector<double>& pending,
                                      util::Rng&) {
  return earliest_finish(task, view, pending);
}

sim::ProcId LightestLoadedRule::place(const workload::Task&,
                                      const sim::SystemView& view,
                                      const std::vector<double>& pending,
                                      util::Rng&) {
  sim::ProcId best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < view.size(); ++j) {
    if (pending[j] < best_load) {
      best_load = pending[j];
      best = static_cast<sim::ProcId>(j);
    }
  }
  return best;
}

sim::ProcId RoundRobinRule::place(const workload::Task&,
                                  const sim::SystemView& view,
                                  const std::vector<double>&, util::Rng&) {
  const auto j = static_cast<sim::ProcId>(next_ % view.size());
  ++next_;
  return j;
}

ImmediatePolicy::ImmediatePolicy(std::unique_ptr<ImmediateRule> rule)
    : rule_(std::move(rule)) {
  if (!rule_) throw std::invalid_argument("ImmediatePolicy: null rule");
}

sim::BatchAssignment ImmediatePolicy::invoke(
    const sim::SystemView& view, std::deque<workload::Task>& queue,
    util::Rng& rng) {
  auto assignment = sim::BatchAssignment::empty(view.size());
  pending_.resize(view.size());
  for (std::size_t j = 0; j < view.size(); ++j) {
    pending_[j] = view.procs[j].pending_mflops;
  }
  while (!queue.empty()) {
    const workload::Task task = queue.front();
    queue.pop_front();
    const sim::ProcId j = rule_->place(task, view, pending_, rng);
    if (j < 0 || static_cast<std::size_t>(j) >= view.size()) {
      throw std::runtime_error("ImmediatePolicy: rule returned bad processor");
    }
    assignment.per_proc[static_cast<std::size_t>(j)].push_back(task.id);
    pending_[static_cast<std::size_t>(j)] += task.size_mflops;
  }
  return assignment;
}

SortedBatchPolicy::SortedBatchPolicy(bool descending, std::size_t batch_size)
    : descending_(descending), batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("SortedBatchPolicy: batch_size >= 1");
  }
}

sim::BatchAssignment SortedBatchPolicy::invoke(
    const sim::SystemView& view, std::deque<workload::Task>& queue,
    util::Rng&) {
  auto assignment = sim::BatchAssignment::empty(view.size());
  if (queue.empty()) return assignment;

  batch_.clear();
  batch_.reserve(std::min(batch_size_, queue.size()));
  while (batch_.size() < batch_size_ && !queue.empty()) {
    batch_.push_back(queue.front());
    queue.pop_front();
  }
  std::stable_sort(batch_.begin(), batch_.end(),
                   [&](const workload::Task& a, const workload::Task& b) {
                     return descending_ ? a.size_mflops > b.size_mflops
                                        : a.size_mflops < b.size_mflops;
                   });
  pending_.resize(view.size());
  for (std::size_t j = 0; j < view.size(); ++j) {
    pending_[j] = view.procs[j].pending_mflops;
  }
  for (const auto& task : batch_) {
    const sim::ProcId j = earliest_finish(task, view, pending_);
    assignment.per_proc[static_cast<std::size_t>(j)].push_back(task.id);
    pending_[static_cast<std::size_t>(j)] += task.size_mflops;
  }
  return assignment;
}

std::unique_ptr<sim::SchedulingPolicy> make_ef() {
  return std::make_unique<ImmediatePolicy>(
      std::make_unique<EarliestFinishRule>());
}
std::unique_ptr<sim::SchedulingPolicy> make_ll() {
  return std::make_unique<ImmediatePolicy>(
      std::make_unique<LightestLoadedRule>());
}
std::unique_ptr<sim::SchedulingPolicy> make_rr() {
  return std::make_unique<ImmediatePolicy>(std::make_unique<RoundRobinRule>());
}
std::unique_ptr<sim::SchedulingPolicy> make_mm(std::size_t batch_size) {
  return std::make_unique<SortedBatchPolicy>(false, batch_size);
}
std::unique_ptr<sim::SchedulingPolicy> make_mx(std::size_t batch_size) {
  return std::make_unique<SortedBatchPolicy>(true, batch_size);
}

}  // namespace gasched::sched
