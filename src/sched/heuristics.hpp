#pragma once
// Baseline schedulers from §4.1 of the paper.
//
// Immediate mode (one task at a time, FCFS):
//   EF — earliest finish: argmin_j (L_j + t) / P_j.          Θ(M) per task
//   LL — lightest loaded: argmin_j L_j (MFLOPs).             Θ(M) per task
//   RR — round robin: cyclic assignment, no state inspected. Θ(1) per task
//
// Batch mode (FCFS batches of `batch_size` tasks):
//   MX — max-min: sort batch descending by size, place each on the
//        processor that finishes it first (largest tasks early, small
//        tasks fill the gaps).       Θ(max(M, n log n)) per batch
//   MM — min-min: as MX but ascending.
//
// None of these use communication estimates — per the paper, "the effect
// of communication is only considered after tasks or batches of tasks
// have been scheduled". They adapt only through the observed loads in the
// system view.

#include <memory>
#include <string>

#include "sim/policy.hpp"

namespace gasched::sched {

/// Immediate-mode placement rule: choose a processor for one task given
/// the (locally updated) load vector.
class ImmediateRule {
 public:
  virtual ~ImmediateRule() = default;
  /// Chooses a processor. `pending_mflops[j]` includes tasks already
  /// placed earlier in the same scheduler invocation.
  virtual sim::ProcId place(const workload::Task& task,
                            const sim::SystemView& view,
                            const std::vector<double>& pending_mflops,
                            util::Rng& rng) = 0;
  /// Rule name ("EF", ...).
  virtual std::string name() const = 0;
};

/// EF: earliest estimated finish time (load + task) / rate.
class EarliestFinishRule final : public ImmediateRule {
 public:
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override { return "EF"; }
};

/// LL: smallest pending load in MFLOPs (task size ignored).
class LightestLoadedRule final : public ImmediateRule {
 public:
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override { return "LL"; }
};

/// RR: cyclic assignment (stateful).
class RoundRobinRule final : public ImmediateRule {
 public:
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override { return "RR"; }

 private:
  std::size_t next_ = 0;
};

/// Adapts an ImmediateRule to the engine's SchedulingPolicy interface:
/// consumes the whole unscheduled queue FCFS, updating a local load copy
/// after each placement.
class ImmediatePolicy final : public sim::SchedulingPolicy {
 public:
  /// Takes ownership of `rule`.
  explicit ImmediatePolicy(std::unique_ptr<ImmediateRule> rule);
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override;
  std::string name() const override { return rule_->name(); }

 private:
  std::unique_ptr<ImmediateRule> rule_;
  std::vector<double> pending_;  // reused local load copy
};

/// MM / MX batch heuristics: FCFS batches sorted by size, each task placed
/// on the processor finishing it earliest.
class SortedBatchPolicy final : public sim::SchedulingPolicy {
 public:
  /// `descending` = true gives max-min (MX); false gives min-min (MM).
  SortedBatchPolicy(bool descending, std::size_t batch_size = 200);
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override;
  std::string name() const override { return descending_ ? "MX" : "MM"; }

 private:
  bool descending_;
  std::size_t batch_size_;
  std::vector<workload::Task> batch_;  // reused batch buffer
  std::vector<double> pending_;        // reused local load copy
};

/// Factory helpers matching the paper's scheduler names.
std::unique_ptr<sim::SchedulingPolicy> make_ef();
std::unique_ptr<sim::SchedulingPolicy> make_ll();
std::unique_ptr<sim::SchedulingPolicy> make_rr();
std::unique_ptr<sim::SchedulingPolicy> make_mm(std::size_t batch_size = 200);
std::unique_ptr<sim::SchedulingPolicy> make_mx(std::size_t batch_size = 200);

}  // namespace gasched::sched
