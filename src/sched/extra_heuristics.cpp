#include "sched/extra_heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <stdexcept>

namespace gasched::sched {

sim::ProcId MinimumExecutionTimeRule::place(
    const workload::Task& task, const sim::SystemView& view,
    const std::vector<double>&, util::Rng&) {
  sim::ProcId best = 0;
  double best_exec = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < view.size(); ++j) {
    const double rate = view.procs[j].rate;
    if (!(rate > 0.0)) continue;
    const double exec = task.size_mflops / rate;
    if (exec < best_exec) {
      best_exec = exec;
      best = static_cast<sim::ProcId>(j);
    }
  }
  return best;
}

KPercentBestRule::KPercentBestRule(double percent) : percent_(percent) {
  if (!(percent > 0.0) || percent > 100.0) {
    throw std::invalid_argument("KPercentBestRule: percent in (0, 100]");
  }
}

std::string KPercentBestRule::name() const {
  return "KPB" + std::to_string(static_cast<int>(percent_));
}

sim::ProcId KPercentBestRule::place(const workload::Task& task,
                                    const sim::SystemView& view,
                                    const std::vector<double>& pending,
                                    util::Rng&) {
  const std::size_t M = view.size();
  // Rank processors by execution time for this task (fastest first). With
  // uniform task/rate structure the rank is rate-descending, so sort once;
  // the ranking buffer is a reused member, not a per-task allocation.
  order_.resize(M);
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return view.procs[a].rate > view.procs[b].rate;
  });
  const auto subset = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(percent_ / 100.0 * static_cast<double>(M))));
  sim::ProcId best = static_cast<sim::ProcId>(order_[0]);
  double best_finish = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < subset; ++r) {
    const std::size_t j = order_[r];
    const double rate = view.procs[j].rate;
    if (!(rate > 0.0)) continue;
    const double finish = (pending[j] + task.size_mflops) / rate;
    if (finish < best_finish) {
      best_finish = finish;
      best = static_cast<sim::ProcId>(j);
    }
  }
  return best;
}

SufferagePolicy::SufferagePolicy(std::size_t batch_size)
    : batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("SufferagePolicy: batch_size >= 1");
  }
}

sim::BatchAssignment SufferagePolicy::invoke(
    const sim::SystemView& view, std::deque<workload::Task>& queue,
    util::Rng&) {
  auto assignment = sim::BatchAssignment::empty(view.size());
  if (queue.empty()) return assignment;

  std::vector<workload::Task> batch;
  while (batch.size() < batch_size_ && !queue.empty()) {
    batch.push_back(queue.front());
    queue.pop_front();
  }
  std::vector<double> pending(view.size());
  for (std::size_t j = 0; j < view.size(); ++j) {
    pending[j] = view.procs[j].pending_mflops;
  }
  std::vector<bool> done(batch.size(), false);

  for (std::size_t assigned = 0; assigned < batch.size(); ++assigned) {
    // For each unassigned task: best completion, second best, sufferage.
    double best_sufferage = -1.0;
    std::size_t pick = 0;
    sim::ProcId pick_proc = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      double c1 = std::numeric_limits<double>::infinity();  // best
      double c2 = std::numeric_limits<double>::infinity();  // second best
      sim::ProcId p1 = 0;
      for (std::size_t j = 0; j < view.size(); ++j) {
        const double rate = view.procs[j].rate;
        if (!(rate > 0.0)) continue;
        const double c = (pending[j] + batch[i].size_mflops) / rate;
        if (c < c1) {
          c2 = c1;
          c1 = c;
          p1 = static_cast<sim::ProcId>(j);
        } else if (c < c2) {
          c2 = c;
        }
      }
      const double sufferage = std::isfinite(c2) ? c2 - c1 : c1;
      if (sufferage > best_sufferage) {
        best_sufferage = sufferage;
        pick = i;
        pick_proc = p1;
      }
    }
    done[pick] = true;
    assignment.per_proc[static_cast<std::size_t>(pick_proc)].push_back(
        batch[pick].id);
    pending[static_cast<std::size_t>(pick_proc)] += batch[pick].size_mflops;
  }
  return assignment;
}

sim::ProcId OpportunisticLoadBalancingRule::place(
    const workload::Task&, const sim::SystemView& view,
    const std::vector<double>& pending, util::Rng&) {
  // Earliest-available machine: smallest drain time of the already
  // assigned load. Unlike LL this accounts for processor speed; unlike EF
  // it ignores the execution time of the task being placed.
  sim::ProcId best = 0;
  double best_avail = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < view.size(); ++j) {
    const double rate = view.procs[j].rate;
    if (!(rate > 0.0)) continue;
    const double avail = pending[j] / rate;
    if (avail < best_avail) {
      best_avail = avail;
      best = static_cast<sim::ProcId>(j);
    }
  }
  return best;
}

DuplexPolicy::DuplexPolicy(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("DuplexPolicy: batch_size >= 1");
  }
}

namespace {

/// Sorted-batch placement used by Duplex: earliest-finish assignment of
/// the batch in ascending (min-min style) or descending (max-min style)
/// size order. Returns the assignment and the estimated makespan of the
/// resulting load vector.
std::pair<sim::BatchAssignment, double> sorted_placement(
    const sim::SystemView& view, std::vector<workload::Task> batch,
    bool descending) {
  std::stable_sort(batch.begin(), batch.end(),
                   [&](const workload::Task& a, const workload::Task& b) {
                     return descending ? a.size_mflops > b.size_mflops
                                       : a.size_mflops < b.size_mflops;
                   });
  auto assignment = sim::BatchAssignment::empty(view.size());
  std::vector<double> pending(view.size());
  for (std::size_t j = 0; j < view.size(); ++j) {
    pending[j] = view.procs[j].pending_mflops;
  }
  for (const auto& task : batch) {
    sim::ProcId best = 0;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < view.size(); ++j) {
      const double rate = view.procs[j].rate;
      if (!(rate > 0.0)) continue;
      const double finish = (pending[j] + task.size_mflops) / rate;
      if (finish < best_time) {
        best_time = finish;
        best = static_cast<sim::ProcId>(j);
      }
    }
    assignment.per_proc[static_cast<std::size_t>(best)].push_back(task.id);
    pending[static_cast<std::size_t>(best)] += task.size_mflops;
  }
  double makespan = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    const double rate = view.procs[j].rate;
    if (rate > 0.0) makespan = std::max(makespan, pending[j] / rate);
  }
  return {std::move(assignment), makespan};
}

}  // namespace

sim::BatchAssignment DuplexPolicy::invoke(const sim::SystemView& view,
                                          std::deque<workload::Task>& queue,
                                          util::Rng&) {
  auto assignment = sim::BatchAssignment::empty(view.size());
  if (queue.empty()) return assignment;

  std::vector<workload::Task> batch;
  while (batch.size() < batch_size_ && !queue.empty()) {
    batch.push_back(queue.front());
    queue.pop_front();
  }
  auto [mm, mm_makespan] = sorted_placement(view, batch, /*descending=*/false);
  auto [mx, mx_makespan] = sorted_placement(view, batch, /*descending=*/true);
  return mm_makespan <= mx_makespan ? std::move(mm) : std::move(mx);
}

std::unique_ptr<sim::SchedulingPolicy> make_met() {
  return std::make_unique<ImmediatePolicy>(
      std::make_unique<MinimumExecutionTimeRule>());
}
std::unique_ptr<sim::SchedulingPolicy> make_kpb(double percent) {
  return std::make_unique<ImmediatePolicy>(
      std::make_unique<KPercentBestRule>(percent));
}
std::unique_ptr<sim::SchedulingPolicy> make_sufferage(std::size_t batch_size) {
  return std::make_unique<SufferagePolicy>(batch_size);
}
std::unique_ptr<sim::SchedulingPolicy> make_olb() {
  return std::make_unique<ImmediatePolicy>(
      std::make_unique<OpportunisticLoadBalancingRule>());
}
std::unique_ptr<sim::SchedulingPolicy> make_duplex(std::size_t batch_size) {
  return std::make_unique<DuplexPolicy>(batch_size);
}

}  // namespace gasched::sched
