#pragma once
// Additional baselines from Maheswaran, Ali, Siegel, Hensgen & Freund,
// "Dynamic mapping of a class of independent tasks onto heterogeneous
// computing systems" (JPDC 1999) — reference [11] of the paper. The paper
// compares against a subset of these; implementing the remainder makes
// the comparison suite complete:
//
//   MET  (minimum execution time, immediate): place each task on the
//        processor that executes it fastest, ignoring load. Θ(M).
//   KPB  (k-percent best, immediate): restrict to the k% of processors
//        with the best execution time for the task, then pick the one
//        with the earliest finish. Interpolates MET and EF/MCT. Θ(M log M).
//   SUF  (Sufferage, batch): repeatedly assign the task that would
//        "suffer" most if denied its best processor (largest gap between
//        best and second-best completion time). Θ(n²·M) per batch.
//   OLB  (opportunistic load balancing, immediate): place each task on
//        the processor expected to become *available* soonest, ignoring
//        the task's own execution time. Θ(M).
//   DUP  (Duplex, batch): run min-min and max-min on the batch and keep
//        whichever produces the smaller estimated makespan. Θ(n²·M).

#include <memory>

#include "sched/heuristics.hpp"

namespace gasched::sched {

/// MET: fastest executor regardless of load. With heterogeneous rates it
/// piles everything on the fastest machine — a useful pathological
/// baseline.
class MinimumExecutionTimeRule final : public ImmediateRule {
 public:
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override { return "MET"; }
};

/// KPB: earliest finish among the ⌈k%·M⌉ fastest processors for the task.
class KPercentBestRule final : public ImmediateRule {
 public:
  /// `percent` in (0, 100]. 100 degenerates to EF; small values approach
  /// MET.
  explicit KPercentBestRule(double percent = 20.0);
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override;

 private:
  double percent_;
  std::vector<std::size_t> order_;  // reused rate-ranking buffer
};

/// Sufferage batch scheduler (Maheswaran et al. §4.2).
class SufferagePolicy final : public sim::SchedulingPolicy {
 public:
  /// Takes FCFS batches of `batch_size` tasks.
  explicit SufferagePolicy(std::size_t batch_size = 200);
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override;
  std::string name() const override { return "SUF"; }

 private:
  std::size_t batch_size_;
};

/// OLB: earliest-available processor (smallest drain time of the pending
/// load), blind to the task being placed.
class OpportunisticLoadBalancingRule final : public ImmediateRule {
 public:
  sim::ProcId place(const workload::Task& task, const sim::SystemView& view,
                    const std::vector<double>& pending_mflops,
                    util::Rng& rng) override;
  std::string name() const override { return "OLB"; }
};

/// Duplex batch scheduler (Braun et al. taxonomy): evaluates both the
/// min-min and max-min schedules for each batch and commits the one with
/// the smaller estimated makespan.
class DuplexPolicy final : public sim::SchedulingPolicy {
 public:
  /// Takes FCFS batches of `batch_size` tasks.
  explicit DuplexPolicy(std::size_t batch_size = 200);
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override;
  std::string name() const override { return "DUP"; }

 private:
  std::size_t batch_size_;
};

/// Factory helpers.
std::unique_ptr<sim::SchedulingPolicy> make_met();
std::unique_ptr<sim::SchedulingPolicy> make_kpb(double percent = 20.0);
std::unique_ptr<sim::SchedulingPolicy> make_sufferage(
    std::size_t batch_size = 200);
std::unique_ptr<sim::SchedulingPolicy> make_olb();
std::unique_ptr<sim::SchedulingPolicy> make_duplex(
    std::size_t batch_size = 200);

}  // namespace gasched::sched
