#include "ga/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::ga {

double hamming_distance(const Chromosome& a, const Chromosome& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: length mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

double population_diversity(const std::vector<Chromosome>& pop,
                            std::size_t max_pairs, util::Rng& rng) {
  const std::size_t n = pop.size();
  if (n < 2 || max_pairs == 0) return 0.0;

  const std::size_t all_pairs = n * (n - 1) / 2;
  double sum = 0.0;
  std::size_t count = 0;
  if (all_pairs <= max_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        sum += hamming_distance(pop[i], pop[j]);
        ++count;
      }
    }
  } else {
    while (count < max_pairs) {
      const std::size_t i = rng.index(n);
      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;
      sum += hamming_distance(pop[i], pop[j]);
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

GenerationStats summarize_generation(std::size_t generation,
                                     const std::vector<Chromosome>& pop,
                                     const std::vector<double>& fitness,
                                     const std::vector<double>& objective,
                                     std::size_t max_pairs, util::Rng& rng) {
  GenerationStats s;
  s.generation = generation;
  if (!fitness.empty()) {
    s.best_fitness = *std::max_element(fitness.begin(), fitness.end());
    double sum = 0.0;
    for (const double f : fitness) sum += f;
    s.mean_fitness = sum / static_cast<double>(fitness.size());
  }
  if (!objective.empty()) {
    s.best_objective = *std::min_element(objective.begin(), objective.end());
    double sum = 0.0;
    for (const double o : objective) sum += o;
    s.mean_objective = sum / static_cast<double>(objective.size());
  }
  s.diversity = population_diversity(pop, max_pairs, rng);
  return s;
}

}  // namespace gasched::ga
