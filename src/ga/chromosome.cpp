#include "ga/chromosome.hpp"

#include <algorithm>
#include <unordered_set>

namespace gasched::ga {

bool is_permutation_of_distinct(const Chromosome& c) {
  std::unordered_set<Gene> seen;
  seen.reserve(c.size());
  for (const Gene g : c) {
    if (!seen.insert(g).second) return false;
  }
  return true;
}

bool same_gene_set(const Chromosome& a, const Chromosome& b) {
  if (a.size() != b.size()) return false;
  Chromosome sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

void PositionIndex::build(const Chromosome& c) {
  if (c.empty()) {
    min_ = 0;
    max_ = -1;
    dense_ = true;
    return;
  }
  const auto [lo, hi] = std::minmax_element(c.begin(), c.end());
  min_ = *lo;
  max_ = *hi;
  const auto range =
      static_cast<std::size_t>(static_cast<std::int64_t>(max_) - min_) + 1;
  // Dense storage while the value range stays proportional to the
  // chromosome (always true for schedule encodings); pathological gene
  // sets take the sorted-array path instead of an O(range) table.
  dense_ = range <= 4 * c.size() + 1024;
  if (dense_) {
    pos_.assign(range, npos);
    for (std::size_t i = 0; i < c.size(); ++i) {
      pos_[static_cast<std::size_t>(c[i] - min_)] = i;
    }
  } else {
    sorted_.resize(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) sorted_[i] = {c[i], i};
    std::sort(sorted_.begin(), sorted_.end());
  }
}

std::size_t PositionIndex::find_sparse(Gene g) const noexcept {
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), g,
      [](const std::pair<Gene, std::size_t>& p, Gene v) { return p.first < v; });
  if (it == sorted_.end() || it->first != g) return npos;
  return it->second;
}

}  // namespace gasched::ga
