#include "ga/chromosome.hpp"

#include <algorithm>
#include <unordered_set>

namespace gasched::ga {

bool is_permutation_of_distinct(const Chromosome& c) {
  std::unordered_set<Gene> seen;
  seen.reserve(c.size());
  for (const Gene g : c) {
    if (!seen.insert(g).second) return false;
  }
  return true;
}

bool same_gene_set(const Chromosome& a, const Chromosome& b) {
  if (a.size() != b.size()) return false;
  Chromosome sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

std::unordered_map<Gene, std::size_t> position_index(const Chromosome& c) {
  std::unordered_map<Gene, std::size_t> idx;
  idx.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) idx.emplace(c[i], i);
  return idx;
}

}  // namespace gasched::ga
