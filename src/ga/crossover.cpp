#include "ga/crossover.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace gasched::ga {

namespace {

/// Per-thread operator scratch. Crossover runs on whichever thread drives
/// the GA loop (main thread, or a pool worker in island mode); giving each
/// thread its own buffers makes steady-state breeding allocation-free
/// without any locking or interface churn.
struct CrossoverScratch {
  PositionIndex pos_a;
  PositionIndex pos_b;
  std::vector<std::uint8_t> flags;  // CX: position assigned; POS: keep mask
};

CrossoverScratch& cx_scratch() {
  thread_local CrossoverScratch s;
  return s;
}

void check_parents(const Chromosome& a, const Chromosome& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("crossover: parents must be equal non-empty");
  }
}

/// Random inclusive segment [lo, hi] within [0, n).
std::pair<std::size_t, std::size_t> random_segment(std::size_t n,
                                                   util::Rng& rng) {
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  return {lo, hi};
}

}  // namespace

void CycleCrossover::apply_into(const Chromosome& a, const Chromosome& b,
                                Chromosome& c1, Chromosome& c2,
                                util::Rng& rng) const {
  check_parents(a, b);
  const std::size_t n = a.size();
  auto& sc = cx_scratch();
  sc.pos_a.build(a);
  c1.resize(n);
  c2.resize(n);
  sc.flags.assign(n, 0);
  // Which parent leads the first cycle is the only random choice; cycles
  // then alternate ownership (classic CX).
  bool from_a = rng.bernoulli(0.5);
  for (std::size_t start = 0; start < n; ++start) {
    if (sc.flags[start]) continue;
    std::size_t i = start;
    do {
      sc.flags[i] = 1;
      if (from_a) {
        c1[i] = a[i];
        c2[i] = b[i];
      } else {
        c1[i] = b[i];
        c2[i] = a[i];
      }
      const std::size_t p = sc.pos_a.find(b[i]);
      if (p == PositionIndex::npos) {
        throw std::invalid_argument("CycleCrossover: parents differ in genes");
      }
      i = p;
    } while (i != start);
    from_a = !from_a;
  }
}

namespace {

/// PMX child: keeps a's segment [lo, hi]; positions outside come from b,
/// remapped through the segment until conflict-free. A gene is "in the
/// segment" exactly when its position in a falls inside [lo, hi], so the
/// position index doubles as the membership set.
void pmx_child_into(const Chromosome& a, const Chromosome& b,
                    const PositionIndex& pos_a, std::size_t lo,
                    std::size_t hi, Chromosome& child) {
  const std::size_t n = a.size();
  child.resize(n);
  for (std::size_t i = lo; i <= hi; ++i) child[i] = a[i];
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= lo && i <= hi) continue;
    Gene g = b[i];
    // Follow the mapping a[k] -> b[k] out of the segment. Terminates
    // because each hop lands on a distinct segment position.
    std::size_t guard = 0;
    for (;;) {
      const std::size_t p = pos_a.find(g);
      if (p == PositionIndex::npos || p < lo || p > hi) break;
      if (++guard > n) {
        throw std::invalid_argument("PmxCrossover: parents differ in genes");
      }
      g = b[p];
    }
    child[i] = g;
  }
}

/// OX1 child: keeps a's segment; fills remaining slots with b's genes in
/// b-order starting after the segment. Membership in the copied segment
/// is again a position-range test on a's index.
void order_child_into(const Chromosome& a, const Chromosome& b,
                      const PositionIndex& pos_a, std::size_t lo,
                      std::size_t hi, Chromosome& child) {
  const std::size_t n = a.size();
  if (hi - lo + 1 == n) {  // segment covers everything
    child.assign(a.begin(), a.end());
    return;
  }
  child.resize(n);
  for (std::size_t i = lo; i <= hi; ++i) child[i] = a[i];
  auto next_slot = [&](std::size_t w) {
    do {
      w = (w + 1) % n;
    } while (w >= lo && w <= hi);
    return w;
  };
  std::size_t write = hi;  // advanced before first use
  write = next_slot(write);
  for (std::size_t k = 0; k < n; ++k) {
    const Gene g = b[(hi + 1 + k) % n];
    const std::size_t p = pos_a.find(g);
    if (p != PositionIndex::npos && p >= lo && p <= hi) continue;  // taken
    child[write] = g;
    if (k + 1 < n) write = next_slot(write);
  }
}

}  // namespace

void PmxCrossover::apply_into(const Chromosome& a, const Chromosome& b,
                              Chromosome& c1, Chromosome& c2,
                              util::Rng& rng) const {
  check_parents(a, b);
  const auto [lo, hi] = random_segment(a.size(), rng);
  auto& sc = cx_scratch();
  sc.pos_a.build(a);
  sc.pos_b.build(b);
  pmx_child_into(a, b, sc.pos_a, lo, hi, c1);
  pmx_child_into(b, a, sc.pos_b, lo, hi, c2);
}

void OrderCrossover::apply_into(const Chromosome& a, const Chromosome& b,
                                Chromosome& c1, Chromosome& c2,
                                util::Rng& rng) const {
  check_parents(a, b);
  const auto [lo, hi] = random_segment(a.size(), rng);
  auto& sc = cx_scratch();
  sc.pos_a.build(a);
  sc.pos_b.build(b);
  order_child_into(a, b, sc.pos_a, lo, hi, c1);
  order_child_into(b, a, sc.pos_b, lo, hi, c2);
}

void PositionCrossover::apply_into(const Chromosome& a, const Chromosome& b,
                                   Chromosome& c1, Chromosome& c2,
                                   util::Rng& rng) const {
  check_parents(a, b);
  const std::size_t n = a.size();
  auto& sc = cx_scratch();
  sc.flags.resize(n);
  for (std::size_t i = 0; i < n; ++i) sc.flags[i] = rng.bernoulli(0.5);

  auto make_child = [&](const Chromosome& keep_from,
                        const Chromosome& fill_from,
                        const PositionIndex& idx_keep, Chromosome& child) {
    child.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (sc.flags[i]) child[i] = keep_from[i];
    }
    std::size_t write = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const Gene g = fill_from[k];
      const std::size_t p = idx_keep.find(g);
      if (p != PositionIndex::npos && sc.flags[p]) continue;  // kept already
      while (write < n && sc.flags[write]) ++write;
      assert(write < n);
      child[write++] = g;
    }
  };
  sc.pos_a.build(a);
  make_child(a, b, sc.pos_a, c1);
  sc.pos_b.build(b);
  make_child(b, a, sc.pos_b, c2);
}

}  // namespace gasched::ga
