#include "ga/crossover.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace gasched::ga {

namespace {

void check_parents(const Chromosome& a, const Chromosome& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("crossover: parents must be equal non-empty");
  }
}

/// Random inclusive segment [lo, hi] within [0, n).
std::pair<std::size_t, std::size_t> random_segment(std::size_t n,
                                                   util::Rng& rng) {
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  return {lo, hi};
}

}  // namespace

std::pair<Chromosome, Chromosome> CycleCrossover::apply(
    const Chromosome& a, const Chromosome& b, util::Rng& rng) const {
  check_parents(a, b);
  const std::size_t n = a.size();
  const auto pos_a = position_index(a);
  Chromosome c1(n), c2(n);
  std::vector<bool> assigned(n, false);
  // Which parent leads the first cycle is the only random choice; cycles
  // then alternate ownership (classic CX).
  bool from_a = rng.bernoulli(0.5);
  for (std::size_t start = 0; start < n; ++start) {
    if (assigned[start]) continue;
    std::size_t i = start;
    do {
      assigned[i] = true;
      if (from_a) {
        c1[i] = a[i];
        c2[i] = b[i];
      } else {
        c1[i] = b[i];
        c2[i] = a[i];
      }
      const auto it = pos_a.find(b[i]);
      if (it == pos_a.end()) {
        throw std::invalid_argument("CycleCrossover: parents differ in genes");
      }
      i = it->second;
    } while (i != start);
    from_a = !from_a;
  }
  return {std::move(c1), std::move(c2)};
}

namespace {

/// PMX child: keeps a's segment [lo, hi]; positions outside come from b,
/// remapped through the segment until conflict-free.
Chromosome pmx_child(const Chromosome& a, const Chromosome& b,
                     const std::unordered_map<Gene, std::size_t>& pos_a,
                     std::size_t lo, std::size_t hi) {
  const std::size_t n = a.size();
  Chromosome child(n);
  std::unordered_set<Gene> in_segment;
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    in_segment.insert(a[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= lo && i <= hi) continue;
    Gene g = b[i];
    // Follow the mapping a[k] -> b[k] out of the segment. Terminates
    // because each hop lands on a distinct segment position.
    std::size_t guard = 0;
    while (in_segment.contains(g)) {
      const auto it = pos_a.find(g);
      if (it == pos_a.end() || ++guard > n) {
        throw std::invalid_argument("PmxCrossover: parents differ in genes");
      }
      g = b[it->second];
    }
    child[i] = g;
  }
  return child;
}

/// OX1 child: keeps a's segment; fills remaining slots with b's genes in
/// b-order starting after the segment.
Chromosome order_child(const Chromosome& a, const Chromosome& b,
                       std::size_t lo, std::size_t hi) {
  const std::size_t n = a.size();
  if (hi - lo + 1 == n) return a;  // segment covers everything
  Chromosome child(n);
  std::unordered_set<Gene> taken;
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    taken.insert(a[i]);
  }
  auto next_slot = [&](std::size_t w) {
    do {
      w = (w + 1) % n;
    } while (w >= lo && w <= hi);
    return w;
  };
  std::size_t write = hi;  // advanced before first use
  write = next_slot(write);
  for (std::size_t k = 0; k < n; ++k) {
    const Gene g = b[(hi + 1 + k) % n];
    if (taken.contains(g)) continue;
    child[write] = g;
    if (k + 1 < n) write = next_slot(write);
  }
  return child;
}

}  // namespace

std::pair<Chromosome, Chromosome> PmxCrossover::apply(const Chromosome& a,
                                                      const Chromosome& b,
                                                      util::Rng& rng) const {
  check_parents(a, b);
  const auto [lo, hi] = random_segment(a.size(), rng);
  const auto pos_a = position_index(a);
  const auto pos_b = position_index(b);
  return {pmx_child(a, b, pos_a, lo, hi), pmx_child(b, a, pos_b, lo, hi)};
}

std::pair<Chromosome, Chromosome> OrderCrossover::apply(const Chromosome& a,
                                                        const Chromosome& b,
                                                        util::Rng& rng) const {
  check_parents(a, b);
  const auto [lo, hi] = random_segment(a.size(), rng);
  return {order_child(a, b, lo, hi), order_child(b, a, lo, hi)};
}

std::pair<Chromosome, Chromosome> PositionCrossover::apply(
    const Chromosome& a, const Chromosome& b, util::Rng& rng) const {
  check_parents(a, b);
  const std::size_t n = a.size();
  std::vector<bool> keep(n);
  for (std::size_t i = 0; i < n; ++i) keep[i] = rng.bernoulli(0.5);

  auto make_child = [&](const Chromosome& keep_from,
                        const Chromosome& fill_from) {
    Chromosome child(n);
    std::unordered_set<Gene> taken;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) {
        child[i] = keep_from[i];
        taken.insert(keep_from[i]);
      }
    }
    std::size_t write = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const Gene g = fill_from[k];
      if (taken.contains(g)) continue;
      while (write < n && keep[write]) ++write;
      assert(write < n);
      child[write++] = g;
    }
    return child;
  };
  return {make_child(a, b), make_child(b, a)};
}

}  // namespace gasched::ga
