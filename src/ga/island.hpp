#pragma once
// Island-model (coarse-grained) parallel genetic algorithm.
//
// The paper adopts a population of 20 — a "micro GA" — citing Chipperfield
// & Fleming's chapter on parallel genetic algorithms (reference [2]). The
// island model is the canonical coarse-grained parallelisation from that
// chapter: K independent sub-populations evolve concurrently and exchange
// their best individuals along a ring every few generations. Migration
// restores diversity that a micro-population loses quickly, at the cost
// of K× evaluation work — which the islands absorb in parallel threads.
//
// Determinism: every island owns an Rng substream derived from
// (caller stream, island index), so results are bit-identical regardless
// of the number of worker threads.

#include <cstddef>
#include <vector>

#include "ga/engine.hpp"

namespace gasched::ga {

/// Island-model configuration on top of a per-island GaConfig.
struct IslandConfig {
  /// Per-island engine parameters. `ga.max_generations` is the *total*
  /// generation budget; it is spent in epochs of `migration_interval`.
  GaConfig ga;
  /// Number of islands K (1 degenerates to a plain GaEngine run).
  std::size_t islands = 4;
  /// Generations evolved between migrations.
  std::size_t migration_interval = 25;
  /// Individuals copied to the next island per migration (ring topology);
  /// they replace the destination's worst individuals.
  std::size_t migrants = 2;
  /// Evolve islands on the shared util::ThreadPool. Disable to run
  /// single-threaded (identical results either way).
  bool parallel = true;
};

/// Result of an island run: the global best plus per-island statistics.
struct IslandResult {
  GaResult best;  ///< global best individual across all islands
  /// Best objective per island at the end of the run.
  std::vector<double> island_objectives;
  /// Total generations evolved, summed over islands.
  std::size_t total_generations = 0;
};

/// Runs the island-model GA on `problem`.
///
/// `initial` seeds every island (each island draws a rotated slice so
/// islands start decorrelated; the usual caller passes the randomised
/// list-scheduling population). Operators are borrowed and must be
/// thread-safe `const` objects, as in GaEngine. `stop` is evaluated
/// between epochs with the epoch's global-best objective.
IslandResult run_island_ga(const GaProblem& problem, const IslandConfig& cfg,
                           const SelectionOp& selection,
                           const CrossoverOp& crossover,
                           const MutationOp& mutation,
                           std::vector<Chromosome> initial, util::Rng& rng,
                           const StopPredicate& stop = {});

}  // namespace gasched::ga
