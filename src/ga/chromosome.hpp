#pragma once
// Permutation chromosomes for the genetic algorithm framework.
//
// A chromosome is a permutation of distinct integer symbols. For the
// scheduling problem the symbols are task ids (>= 0) plus distinct
// negative queue delimiters (see core/encoding.hpp); the GA framework
// itself only assumes distinctness.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace gasched::ga {

/// One chromosome symbol.
using Gene = std::int32_t;

/// A permutation of distinct genes.
using Chromosome = std::vector<Gene>;

/// True when `c` contains no duplicate genes.
bool is_permutation_of_distinct(const Chromosome& c);

/// True when `a` and `b` contain exactly the same multiset of genes
/// (prerequisite for permutation crossover).
bool same_gene_set(const Chromosome& a, const Chromosome& b);

/// Reusable gene → position index. Schedule chromosomes (and the toy
/// permutations in tests) keep their genes in a small contiguous range
/// — task slots [0, H) plus delimiters [−(M−1), 0) — so the index is a
/// dense vector keyed by (gene − min); build() reuses its storage, making
/// steady-state lookups allocation-free, unlike the unordered_map this
/// replaces (one rehashed map per crossover pair). Degenerate gene sets
/// whose value range is far wider than the chromosome fall back to a
/// sorted array with binary-search lookups.
class PositionIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Rebuilds the index over `c`. Genes must be distinct.
  void build(const Chromosome& c);

  /// Position of `g` in the last-built chromosome, npos when absent.
  std::size_t find(Gene g) const noexcept {
    if (dense_) {
      if (g < min_ || g > max_) return npos;
      return pos_[static_cast<std::size_t>(g - min_)];
    }
    return find_sparse(g);
  }

 private:
  std::size_t find_sparse(Gene g) const noexcept;

  std::vector<std::size_t> pos_;  // dense: position by (gene - min_)
  std::vector<std::pair<Gene, std::size_t>> sorted_;  // sparse fallback
  Gene min_ = 0;
  Gene max_ = -1;  // empty range until built
  bool dense_ = true;
};

}  // namespace gasched::ga
