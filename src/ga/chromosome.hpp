#pragma once
// Permutation chromosomes for the genetic algorithm framework.
//
// A chromosome is a permutation of distinct integer symbols. For the
// scheduling problem the symbols are task ids (>= 0) plus distinct
// negative queue delimiters (see core/encoding.hpp); the GA framework
// itself only assumes distinctness.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace gasched::ga {

/// One chromosome symbol.
using Gene = std::int32_t;

/// A permutation of distinct genes.
using Chromosome = std::vector<Gene>;

/// True when `c` contains no duplicate genes.
bool is_permutation_of_distinct(const Chromosome& c);

/// True when `a` and `b` contain exactly the same multiset of genes
/// (prerequisite for permutation crossover).
bool same_gene_set(const Chromosome& a, const Chromosome& b);

/// Builds gene → position index for `c`. Genes must be distinct.
std::unordered_map<Gene, std::size_t> position_index(const Chromosome& c);

}  // namespace gasched::ga
