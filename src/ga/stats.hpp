#pragma once
// Per-generation population statistics for the GA engine.
//
// The paper adopts a 20-individual micro GA (§4.2, citing ref [2]) on the
// grounds that it "speeds up computation time without impacting greatly
// on the final result". That trade hinges on how fast a small population
// loses genetic diversity; this header provides the instrumentation to
// observe it: per-generation fitness moments plus a normalised
// genotype-diversity measure (mean pairwise Hamming distance over a
// bounded sample of pairs). GaConfig::record_stats enables collection;
// the streams used for sampling are derived with Rng::split so enabling
// statistics never perturbs the evolution itself.

#include <cstddef>
#include <vector>

#include "ga/chromosome.hpp"
#include "util/rng.hpp"

namespace gasched::ga {

/// Snapshot of one generation's population.
struct GenerationStats {
  std::size_t generation = 0;   ///< 0 = initial population
  double best_fitness = 0.0;    ///< max fitness in the population
  double mean_fitness = 0.0;    ///< mean fitness
  double best_objective = 0.0;  ///< min objective in the population
  double mean_objective = 0.0;  ///< mean objective
  double diversity = 0.0;       ///< normalised Hamming diversity in [0, 1]
};

/// Normalised Hamming distance between two equal-length chromosomes:
/// fraction of positions whose genes differ. Returns 0 for empty inputs.
double hamming_distance(const Chromosome& a, const Chromosome& b);

/// Mean pairwise Hamming distance over the population, estimated from at
/// most `max_pairs` sampled pairs (all pairs when the population is small
/// enough). 0 = population collapsed to clones; higher = more diverse.
/// Requires at least two individuals (returns 0 otherwise).
double population_diversity(const std::vector<Chromosome>& pop,
                            std::size_t max_pairs, util::Rng& rng);

/// Builds one GenerationStats record from precomputed per-individual
/// fitness and objective arrays (as maintained by the engine).
GenerationStats summarize_generation(std::size_t generation,
                                     const std::vector<Chromosome>& pop,
                                     const std::vector<double>& fitness,
                                     const std::vector<double>& objective,
                                     std::size_t max_pairs, util::Rng& rng);

}  // namespace gasched::ga
