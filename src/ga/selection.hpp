#pragma once
// Parent selection operators. The paper (§3.3) uses weighted roulette
// wheel selection; tournament, rank, and stochastic universal sampling are
// provided for the ablation benches.

#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gasched::ga {

/// Strategy: choose `count` population indices (with replacement) biased
/// towards fitter individuals. Fitness values are non-negative; all-zero
/// fitness degrades to uniform selection.
class SelectionOp {
 public:
  virtual ~SelectionOp() = default;
  /// Selects `count` indices into the population described by `fitness`.
  virtual std::vector<std::size_t> select(std::span<const double> fitness,
                                          std::size_t count,
                                          util::Rng& rng) const = 0;
  /// Same draw, written into a caller-reused buffer (cleared first) so
  /// the per-generation selection is allocation-free. Consumes the same
  /// RNG stream as select(). Default adapter delegates to select().
  virtual void select_into(std::span<const double> fitness, std::size_t count,
                           util::Rng& rng,
                           std::vector<std::size_t>& out) const {
    out = select(fitness, count, rng);
  }
  /// Operator name for reports.
  virtual std::string name() const = 0;
};

/// Weighted roulette wheel (fitness-proportionate) selection: individual i
/// occupies a slot of size ς_i = F_i / Σ_j F_j (paper §3.3).
class RouletteSelection final : public SelectionOp {
 public:
  std::vector<std::size_t> select(std::span<const double> fitness,
                                  std::size_t count,
                                  util::Rng& rng) const override;
  void select_into(std::span<const double> fitness, std::size_t count,
                   util::Rng& rng,
                   std::vector<std::size_t>& out) const override;
  std::string name() const override { return "roulette"; }
};

/// k-way tournament selection: the fittest of k uniform picks wins.
class TournamentSelection final : public SelectionOp {
 public:
  /// Requires k >= 1.
  explicit TournamentSelection(std::size_t k = 2);
  std::vector<std::size_t> select(std::span<const double> fitness,
                                  std::size_t count,
                                  util::Rng& rng) const override;
  void select_into(std::span<const double> fitness, std::size_t count,
                   util::Rng& rng,
                   std::vector<std::size_t>& out) const override;
  std::string name() const override;

 private:
  std::size_t k_;
};

/// Linear rank selection: probability proportional to rank (worst = 1).
class RankSelection final : public SelectionOp {
 public:
  std::vector<std::size_t> select(std::span<const double> fitness,
                                  std::size_t count,
                                  util::Rng& rng) const override;
  void select_into(std::span<const double> fitness, std::size_t count,
                   util::Rng& rng,
                   std::vector<std::size_t>& out) const override;
  std::string name() const override { return "rank"; }
};

/// Stochastic universal sampling: `count` equally spaced pointers over the
/// roulette wheel — lower selection variance than repeated roulette spins.
class SusSelection final : public SelectionOp {
 public:
  std::vector<std::size_t> select(std::span<const double> fitness,
                                  std::size_t count,
                                  util::Rng& rng) const override;
  void select_into(std::span<const double> fitness, std::size_t count,
                   util::Rng& rng,
                   std::vector<std::size_t>& out) const override;
  std::string name() const override { return "sus"; }
};

}  // namespace gasched::ga
