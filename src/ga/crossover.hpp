#pragma once
// Permutation crossover operators. The paper (§3.3) uses cycle crossover
// (Oliver, Smith & Holland 1987); PMX, order (OX1), and position-based
// crossover are provided for the ablation benches. All operators require
// both parents to be permutations of the same distinct gene set and
// guarantee the children are too.

#include <string>
#include <utility>

#include "ga/chromosome.hpp"
#include "util/rng.hpp"

namespace gasched::ga {

/// Strategy: combine two parent permutations into two children.
class CrossoverOp {
 public:
  virtual ~CrossoverOp() = default;
  /// Writes two children into `c1`/`c2` (resized; buffer capacity is
  /// reused, so steady-state breeding is allocation-free). The children
  /// must not alias the parents. Parents must share the same gene set.
  virtual void apply_into(const Chromosome& a, const Chromosome& b,
                          Chromosome& c1, Chromosome& c2,
                          util::Rng& rng) const = 0;
  /// Convenience wrapper returning freshly allocated children.
  std::pair<Chromosome, Chromosome> apply(const Chromosome& a,
                                          const Chromosome& b,
                                          util::Rng& rng) const {
    std::pair<Chromosome, Chromosome> out;
    apply_into(a, b, out.first, out.second, rng);
    return out;
  }
  /// Operator name for reports.
  virtual std::string name() const = 0;
};

/// Cycle crossover (CX): children inherit each position from one parent,
/// alternating ownership between the permutation cycles of (a, b). Every
/// gene keeps a position it held in one of its parents.
class CycleCrossover final : public CrossoverOp {
 public:
  void apply_into(const Chromosome& a, const Chromosome& b, Chromosome& c1,
                  Chromosome& c2, util::Rng& rng) const override;
  std::string name() const override { return "cycle"; }
};

/// Partially mapped crossover (PMX): swaps a random segment and repairs
/// conflicts through the segment's mapping.
class PmxCrossover final : public CrossoverOp {
 public:
  void apply_into(const Chromosome& a, const Chromosome& b, Chromosome& c1,
                  Chromosome& c2, util::Rng& rng) const override;
  std::string name() const override { return "pmx"; }
};

/// Order crossover (OX1): copies a random segment from one parent and
/// fills the rest in the other parent's relative order.
class OrderCrossover final : public CrossoverOp {
 public:
  void apply_into(const Chromosome& a, const Chromosome& b, Chromosome& c1,
                  Chromosome& c2, util::Rng& rng) const override;
  std::string name() const override { return "order"; }
};

/// Position-based crossover (POS): a random subset of positions is
/// inherited verbatim; remaining genes fill in the other parent's order.
class PositionCrossover final : public CrossoverOp {
 public:
  void apply_into(const Chromosome& a, const Chromosome& b, Chromosome& c1,
                  Chromosome& c2, util::Rng& rng) const override;
  std::string name() const override { return "position"; }
};

}  // namespace gasched::ga
