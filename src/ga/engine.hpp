#pragma once
// Generic genetic-algorithm loop (paper Fig 1):
//
//     initialise population
//     do { crossover; random mutation; selection } while (!stopping)
//     return best individual
//
// The engine is problem-agnostic: a GaProblem supplies fitness (to
// maximise), a reporting objective (e.g. makespan, to minimise), and an
// optional local-improvement operator (the paper's re-balancing
// heuristic, applied to every individual each generation).
//
// Evaluation core invariants (see docs/evaluation.md):
//  * fitness/objective are cached per individual with dirty tracking —
//    elites and survivors untouched by crossover/mutation/improve are
//    never re-evaluated;
//  * evaluation goes through a problem-owned Workspace so hot paths can
//    decode/evaluate without allocating;
//  * optional population-parallel evaluation is bit-identical to serial
//    execution for any thread count (evaluation is a pure function of the
//    chromosome; RNG-consuming operators always run serially).

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/numeric.hpp"
#include "ga/chromosome.hpp"
#include "ga/crossover.hpp"
#include "ga/mutation.hpp"
#include "ga/selection.hpp"
#include "ga/stats.hpp"
#include "util/rng.hpp"

namespace gasched::ga {

/// Problem interface consumed by GaEngine.
class GaProblem {
 public:
  /// Combined result of evaluating one individual.
  struct Evaluation {
    double fitness = 0.0;    ///< >= 0; larger is better (paper: F = 1/E)
    double objective = 0.0;  ///< smaller is better (paper: makespan)
  };

  /// Reusable, problem-owned evaluation scratch (decode buffers etc.).
  /// The engine creates one per concurrent evaluation worker via
  /// make_workspace() and passes it back on every evaluate()/improve()
  /// call; a workspace is never used from two threads at once.
  class Workspace {
   public:
    virtual ~Workspace() = default;

    /// Improve-supplied evaluation channel: an improve() implementation
    /// that fully prices the chromosome anyway (e.g. the re-balancing
    /// heuristic) may publish that evaluation here, sparing the engine a
    /// redundant evaluate() call. Contract: when has_improve_evaluation
    /// is set after an improve() call, improve_evaluation must be
    /// bit-identical to evaluate(c, ws) of the chromosome as improve()
    /// left it. The engine clears the flag before every improve() call
    /// and discards captured values if a later pass modifies the
    /// chromosome without re-supplying.
    bool has_improve_evaluation = false;
    Evaluation improve_evaluation{};
  };

  virtual ~GaProblem() = default;

  /// Fitness of `c`, >= 0; larger is better. (Paper: F = 1/E.)
  virtual double fitness(const Chromosome& c) const = 0;
  /// Reporting/stopping objective; smaller is better. (Paper: makespan.)
  virtual double objective(const Chromosome& c) const = 0;

  /// Evaluates fitness and objective together through `ws` (may be null
  /// when make_workspace() returned null). Must be a pure function of `c`
  /// and safe to call concurrently with distinct workspaces — this is
  /// what population-parallel evaluation relies on. The default adapter
  /// suits problems without shared decode state.
  virtual Evaluation evaluate(const Chromosome& c, Workspace* ws) const {
    (void)ws;
    return {fitness(c), objective(c)};
  }

  /// Evaluates a block of individuals: for each k, out[k] receives the
  /// evaluation of pop[indices[k]]. The engine routes every evaluation
  /// sweep (serial and per-chunk parallel) through this hook so problems
  /// with a vectorized population path (core::ScheduleProblem under
  /// NumericMode::kFast) can price the whole block at once. The default
  /// loops evaluate() in index order — bit-identical to the engine
  /// calling evaluate() itself. Same purity/concurrency contract as
  /// evaluate(); `out` has indices.size() slots.
  virtual void evaluate_batch(std::span<const Chromosome> pop,
                              std::span<const std::size_t> indices,
                              Workspace* ws, Evaluation* out) const {
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out[k] = evaluate(pop[indices[k]], ws);
    }
  }

  /// Creates an evaluation workspace (null when the problem needs none).
  virtual std::unique_ptr<Workspace> make_workspace() const {
    return nullptr;
  }

  /// Optional local improvement applied in place (paper's re-balancing
  /// heuristic). Called `GaConfig::improvement_passes` times per
  /// individual per generation, always serially (it consumes `rng`).
  /// Returns true when `c` may have been modified — the engine uses this
  /// for dirty tracking, so returning false for a modified chromosome
  /// serves stale cached fitness. Default: no-op.
  virtual bool improve(Chromosome& c, util::Rng& rng, Workspace* ws) const {
    (void)c;
    (void)rng;
    (void)ws;
    return false;
  }
};

/// Engine configuration.
struct GaConfig {
  /// Population size ρ. The paper uses 20 (a "micro GA", §4.2).
  std::size_t population = 20;
  /// Hard generation cap (paper §3.4: 1000).
  std::size_t max_generations = 1000;
  /// Probability a selected pair undergoes crossover.
  double crossover_rate = 0.8;
  /// Individuals mutated per generation (paper: one randomly chosen
  /// individual is swap-mutated).
  std::size_t mutants_per_generation = 1;
  /// Local-improvement passes per individual per generation (paper: a
  /// single re-balance; Fig 3 also explores 0 and 50).
  std::size_t improvement_passes = 1;
  /// Stop once the best objective is <= this value (paper: "if it is less
  /// than a specified minimum"). Disabled when <= 0.
  double target_objective = 0.0;
  /// Stop after this many consecutive generations without improvement of
  /// the best objective (convergence detection). Disabled when 0.
  std::size_t stall_generations = 0;
  /// Keep the best individual alive across generations.
  bool elitism = true;
  /// Record the best objective after every generation (Fig 3 data).
  bool record_history = false;
  /// Record per-generation population statistics (fitness moments and
  /// genotype diversity; see ga/stats.hpp). The diversity sampler uses a
  /// stream derived via Rng::split, so enabling this never changes the
  /// evolution itself.
  bool record_stats = false;
  /// Pair-sample budget per generation for the diversity estimate.
  std::size_t diversity_pairs = 64;
  /// Evaluate dirty individuals on util::global_pool() when the
  /// population exceeds parallel_eval_threshold. Evaluation is a pure
  /// function of the chromosome, so results are bit-identical to serial
  /// execution for any thread count.
  bool parallel_evaluation = true;
  /// Populations at or below this size always evaluate serially (the
  /// paper's 20-individual micro GA does not amortise a fork/join).
  std::size_t parallel_eval_threshold = 64;
  /// Numeric mode the problem's evaluators should price with
  /// (core/numeric.hpp). The engine itself never sums — this knob rides
  /// the config so schedulers that build an evaluator per invocation
  /// (core::GeneticBatchScheduler) plumb one mode end to end. Defaults
  /// to the process-wide default (exact unless GASCHED_NUMERIC_MODE or
  /// an [eval] config section says fast).
  core::NumericMode numeric_mode = core::default_numeric_mode();
};

/// Outcome of one GA run.
struct GaResult {
  Chromosome best;                     ///< best individual ever seen
  double best_fitness = 0.0;           ///< its fitness
  double best_objective =              ///< its objective
      std::numeric_limits<double>::infinity();
  std::size_t generations = 0;         ///< generations actually executed
  std::vector<double> objective_history;  ///< per-generation best objective
  /// Per-generation population statistics (entry 0 = initial population;
  /// empty unless GaConfig::record_stats).
  std::vector<GenerationStats> stats_history;
  /// Evaluations actually performed (dirty individuals only); a caching
  /// observability counter — (generations+1) * population without it.
  std::size_t evaluations = 0;
};

/// External stop predicate, checked once per generation. Returning true
/// stops evolution (paper: "the GA will also stop evolving if one of the
/// processors becomes idle"). `generation` is 0-based.
using StopPredicate = std::function<bool(std::size_t generation,
                                         double best_objective)>;

/// A population together with its cached evaluations — the currency of
/// multi-epoch evolution (island migration): an epoch's final population
/// leaves with every individual priced, and the next epoch's engine seeds
/// those caches instead of re-evaluating. `eval[i]` is valid only when
/// `cached[i]` is non-zero; both arrays are parallel to `chrom` (and may
/// be empty to mean "nothing cached"). Cached values must be bit-identical
/// to what evaluate() would return — evaluation is pure, so carrying them
/// across epochs can never change results, only evaluation counts.
struct EvaluatedPopulation {
  std::vector<Chromosome> chrom;
  std::vector<GaProblem::Evaluation> eval;
  std::vector<std::uint8_t> cached;
};

/// Reusable GA engine parameterised by operator strategies.
class GaEngine {
 public:
  /// Operators are borrowed; they must outlive the engine.
  GaEngine(GaConfig cfg, const SelectionOp& selection,
           const CrossoverOp& crossover, const MutationOp& mutation);

  /// Evolves `initial` (resized/padded to cfg.population by cloning) and
  /// returns the best individual. `stop` may be empty. When
  /// `final_population` is non-null the population as of the last
  /// generation is written to it (used by the island model to continue
  /// evolution across migration epochs).
  GaResult run(const GaProblem& problem, std::vector<Chromosome> initial,
               util::Rng& rng, const StopPredicate& stop = {},
               std::vector<Chromosome>* final_population = nullptr) const;

  /// Cache-carrying variant: seeds the population from `initial.chrom`
  /// and installs each cached evaluation instead of marking the slot
  /// dirty, so individuals priced by a previous epoch are never
  /// re-evaluated. On return `final_population` (when non-null) holds the
  /// last generation with every evaluation cached. Results are
  /// bit-identical to run() on the same chromosomes; only the evaluation
  /// count differs.
  GaResult run_seeded(const GaProblem& problem, EvaluatedPopulation initial,
                      util::Rng& rng, const StopPredicate& stop = {},
                      EvaluatedPopulation* final_population = nullptr) const;

  /// Configuration in use.
  const GaConfig& config() const noexcept { return cfg_; }

 private:
  GaConfig cfg_;
  const SelectionOp& selection_;
  const CrossoverOp& crossover_;
  const MutationOp& mutation_;
};

}  // namespace gasched::ga
