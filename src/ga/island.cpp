#include "ga/island.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace gasched::ga {

namespace {

/// Indices of `pop` sorted by ascending cached objective (best first).
/// Every individual leaves an epoch with its evaluation cached
/// (GaEngine::run_seeded's export contract), and evaluation is pure, so
/// ranking on the cache reproduces the re-evaluating ranking bit for bit
/// with zero evaluate() calls at the migration boundary.
std::vector<std::size_t> rank_by_cached_objective(
    const EvaluatedPopulation& pop) {
  std::vector<std::size_t> order(pop.chrom.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pop.eval[a].objective < pop.eval[b].objective;
                   });
  return order;
}

}  // namespace

IslandResult run_island_ga(const GaProblem& problem, const IslandConfig& cfg,
                           const SelectionOp& selection,
                           const CrossoverOp& crossover,
                           const MutationOp& mutation,
                           std::vector<Chromosome> initial, util::Rng& rng,
                           const StopPredicate& stop) {
  if (cfg.islands == 0) {
    throw std::invalid_argument("run_island_ga: islands must be >= 1");
  }
  if (cfg.migration_interval == 0) {
    throw std::invalid_argument("run_island_ga: migration_interval must be >= 1");
  }
  if (initial.empty()) {
    throw std::invalid_argument("run_island_ga: empty initial population");
  }

  const std::size_t K = cfg.islands;
  const std::size_t pop_size = cfg.ga.population;

  // Decorrelated island seeds: island k takes a rotated slice of the
  // seed population. Nothing is cached yet — each island's first epoch
  // prices its seeds; thereafter evaluations ride along with the
  // populations across every migration boundary.
  std::vector<EvaluatedPopulation> pops(K);
  for (std::size_t k = 0; k < K; ++k) {
    pops[k].chrom.reserve(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i) {
      pops[k].chrom.push_back(initial[(k * pop_size + i) % initial.size()]);
    }
  }

  // Independent per-island streams: identical results for any thread count.
  std::vector<util::Rng> rngs;
  rngs.reserve(K);
  for (std::size_t k = 0; k < K; ++k) rngs.push_back(rng.split(k + 1));

  IslandResult result;
  result.island_objectives.assign(K, std::numeric_limits<double>::infinity());
  std::vector<GaResult> island_best(K);
  std::vector<std::size_t> island_gens(K, 0);

  const std::size_t total_budget = cfg.ga.max_generations;
  std::size_t spent = 0;
  while (spent < total_budget) {
    const std::size_t epoch_gens =
        std::min(cfg.migration_interval, total_budget - spent);
    if (stop && stop(spent, result.best.best_objective)) break;
    if (cfg.ga.target_objective > 0.0 &&
        result.best.best_objective <= cfg.ga.target_objective) {
      break;
    }

    GaConfig epoch_cfg = cfg.ga;
    epoch_cfg.max_generations = epoch_gens;
    epoch_cfg.record_history = false;
    const GaEngine engine(epoch_cfg, selection, crossover, mutation);

    auto evolve_island = [&](std::size_t k) {
      EvaluatedPopulation final_pop;
      GaResult r = engine.run_seeded(problem, std::move(pops[k]), rngs[k], {},
                                     &final_pop);
      pops[k] = std::move(final_pop);
      island_gens[k] += r.generations;
      if (r.best_objective < island_best[k].best_objective) {
        island_best[k] = std::move(r);
      }
    };

    if (cfg.parallel && K > 1) {
      util::global_pool().parallel_for(0, K, evolve_island);
    } else {
      for (std::size_t k = 0; k < K; ++k) evolve_island(k);
    }
    spent += epoch_gens;

    // Ring migration: the best `migrants` of island k replace the worst
    // individuals of island (k+1) mod K. Copies are taken from the
    // pre-migration populations so the order of islands is immaterial.
    // Migrants travel with their cached evaluations, so the boundary
    // performs zero evaluate() calls.
    if (K > 1 && cfg.migrants > 0 && spent < total_budget) {
      const std::size_t migrants = std::min(cfg.migrants, pop_size);
      std::vector<std::vector<Chromosome>> outgoing(K);
      std::vector<std::vector<GaProblem::Evaluation>> outgoing_eval(K);
      std::vector<std::vector<std::size_t>> order(K);
      for (std::size_t k = 0; k < K; ++k) {
        order[k] = rank_by_cached_objective(pops[k]);
        for (std::size_t m = 0; m < migrants; ++m) {
          outgoing[k].push_back(pops[k].chrom[order[k][m]]);
          outgoing_eval[k].push_back(pops[k].eval[order[k][m]]);
        }
      }
      for (std::size_t k = 0; k < K; ++k) {
        const std::size_t dst = (k + 1) % K;
        for (std::size_t m = 0; m < migrants; ++m) {
          // Worst individuals sit at the back of the ranking.
          const std::size_t victim = order[dst][pop_size - 1 - m];
          pops[dst].chrom[victim] = outgoing[k][m];
          pops[dst].eval[victim] = outgoing_eval[k][m];
        }
      }
    }
  }

  for (std::size_t k = 0; k < K; ++k) {
    result.total_generations += island_gens[k];
    result.island_objectives[k] = island_best[k].best_objective;
    if (island_best[k].best_objective < result.best.best_objective) {
      result.best = island_best[k];
    }
  }
  return result;
}

}  // namespace gasched::ga
