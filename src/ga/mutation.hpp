#pragma once
// Permutation mutation operators. The paper (§3.3) randomly swaps elements
// of a randomly chosen individual; insertion, inversion, and scramble
// mutations are provided for the ablation benches. All operators preserve
// the gene multiset.

#include <string>

#include "ga/chromosome.hpp"
#include "util/rng.hpp"

namespace gasched::ga {

/// Strategy: perturb a chromosome in place.
class MutationOp {
 public:
  virtual ~MutationOp() = default;
  /// Mutates `c` in place. Must preserve the gene set.
  virtual void apply(Chromosome& c, util::Rng& rng) const = 0;
  /// Operator name for reports.
  virtual std::string name() const = 0;
};

/// Swaps `swaps` random pairs of positions (paper's mutation).
class SwapMutation final : public MutationOp {
 public:
  /// Requires swaps >= 1.
  explicit SwapMutation(std::size_t swaps = 1);
  void apply(Chromosome& c, util::Rng& rng) const override;
  std::string name() const override;

 private:
  std::size_t swaps_;
};

/// Removes one random gene and reinserts it at a random position.
class InsertionMutation final : public MutationOp {
 public:
  void apply(Chromosome& c, util::Rng& rng) const override;
  std::string name() const override { return "insertion"; }
};

/// Reverses a random segment.
class InversionMutation final : public MutationOp {
 public:
  void apply(Chromosome& c, util::Rng& rng) const override;
  std::string name() const override { return "inversion"; }
};

/// Shuffles a random segment.
class ScrambleMutation final : public MutationOp {
 public:
  void apply(Chromosome& c, util::Rng& rng) const override;
  std::string name() const override { return "scramble"; }
};

}  // namespace gasched::ga
