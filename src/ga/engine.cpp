#include "ga/engine.hpp"

#include <stdexcept>

namespace gasched::ga {

GaEngine::GaEngine(GaConfig cfg, const SelectionOp& selection,
                   const CrossoverOp& crossover, const MutationOp& mutation)
    : cfg_(cfg),
      selection_(selection),
      crossover_(crossover),
      mutation_(mutation) {
  if (cfg_.population < 2) {
    throw std::invalid_argument("GaEngine: population must be >= 2");
  }
}

GaResult GaEngine::run(const GaProblem& problem,
                       std::vector<Chromosome> initial, util::Rng& rng,
                       const StopPredicate& stop,
                       std::vector<Chromosome>* final_population) const {
  if (initial.empty()) {
    throw std::invalid_argument("GaEngine::run: empty initial population");
  }
  // Pad/truncate to the configured population size by cycling the seeds.
  std::vector<Chromosome> pop;
  pop.reserve(cfg_.population);
  for (std::size_t i = 0; i < cfg_.population; ++i) {
    pop.push_back(initial[i % initial.size()]);
  }

  GaResult result;
  std::vector<double> fitness(pop.size());
  std::vector<double> objective(pop.size());

  auto evaluate_all = [&] {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      fitness[i] = problem.fitness(pop[i]);
      objective[i] = problem.objective(pop[i]);
      if (objective[i] < result.best_objective) {
        result.best_objective = objective[i];
        result.best_fitness = fitness[i];
        result.best = pop[i];
      }
    }
  };

  // Diversity sampling draws from a derived stream so that enabling
  // statistics cannot perturb the evolution's own randomness.
  util::Rng stats_rng = rng.split(0x57A7);
  auto record_stats = [&](std::size_t gen) {
    if (!cfg_.record_stats) return;
    result.stats_history.push_back(summarize_generation(
        gen, pop, fitness, objective, cfg_.diversity_pairs, stats_rng));
  };

  evaluate_all();
  if (cfg_.record_history) {
    result.objective_history.reserve(cfg_.max_generations + 1);
    result.objective_history.push_back(result.best_objective);
  }
  record_stats(0);

  std::size_t stall = 0;
  for (std::size_t gen = 0; gen < cfg_.max_generations; ++gen) {
    if (cfg_.target_objective > 0.0 &&
        result.best_objective <= cfg_.target_objective) {
      break;
    }
    if (cfg_.stall_generations > 0 && stall >= cfg_.stall_generations) break;
    if (stop && stop(gen, result.best_objective)) break;
    const double best_before = result.best_objective;

    // --- selection: breed the next generation from fitness weights ------
    const auto parents = selection_.select(fitness, pop.size(), rng);
    std::vector<Chromosome> next;
    next.reserve(pop.size());
    for (std::size_t i = 0; i + 1 < parents.size(); i += 2) {
      const Chromosome& pa = pop[parents[i]];
      const Chromosome& pb = pop[parents[i + 1]];
      if (rng.bernoulli(cfg_.crossover_rate)) {
        auto [c1, c2] = crossover_.apply(pa, pb, rng);
        next.push_back(std::move(c1));
        next.push_back(std::move(c2));
      } else {
        next.push_back(pa);
        next.push_back(pb);
      }
    }
    if (next.size() < pop.size()) {
      next.push_back(pop[parents.back()]);  // odd population size
    }

    // --- random mutation -------------------------------------------------
    for (std::size_t m = 0; m < cfg_.mutants_per_generation; ++m) {
      mutation_.apply(next[rng.index(next.size())], rng);
    }

    // --- local improvement (re-balancing heuristic) ----------------------
    if (cfg_.improvement_passes > 0) {
      for (auto& ind : next) {
        for (std::size_t r = 0; r < cfg_.improvement_passes; ++r) {
          problem.improve(ind, rng);
        }
      }
    }

    // --- elitism ----------------------------------------------------------
    if (cfg_.elitism && !result.best.empty()) {
      // Replace the first slot with the incumbent best; cheap and keeps
      // the population size fixed.
      next[0] = result.best;
    }

    pop = std::move(next);
    evaluate_all();
    ++result.generations;
    if (result.best_objective < best_before) {
      stall = 0;
    } else {
      ++stall;
    }
    if (cfg_.record_history) {
      result.objective_history.push_back(result.best_objective);
    }
    record_stats(result.generations);
  }
  if (final_population != nullptr) *final_population = std::move(pop);
  return result;
}

}  // namespace gasched::ga
