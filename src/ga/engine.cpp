#include "ga/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace gasched::ga {

GaEngine::GaEngine(GaConfig cfg, const SelectionOp& selection,
                   const CrossoverOp& crossover, const MutationOp& mutation)
    : cfg_(cfg),
      selection_(selection),
      crossover_(crossover),
      mutation_(mutation) {
  if (cfg_.population < 2) {
    throw std::invalid_argument("GaEngine: population must be >= 2");
  }
}

namespace {

/// Double-buffered population storage. Chromosomes, cached evaluations,
/// and dirty flags live in parallel arrays; generation transitions swap
/// the buffers so chromosome capacity is reused instead of reallocated.
struct PopulationBuffer {
  std::vector<Chromosome> chrom;
  std::vector<double> fitness;
  std::vector<double> objective;
  std::vector<std::uint8_t> dirty;

  explicit PopulationBuffer(std::size_t n)
      : chrom(n), fitness(n, 0.0), objective(n, 0.0), dirty(n, 1) {}

  /// Copies individual `src_i` of `src` into slot `i`, carrying its
  /// cached evaluation (clean copy; no re-evaluation needed).
  void copy_from(std::size_t i, const PopulationBuffer& src,
                 std::size_t src_i) {
    chrom[i].assign(src.chrom[src_i].begin(), src.chrom[src_i].end());
    fitness[i] = src.fitness[src_i];
    objective[i] = src.objective[src_i];
    dirty[i] = 0;
  }
};

}  // namespace

GaResult GaEngine::run(const GaProblem& problem,
                       std::vector<Chromosome> initial, util::Rng& rng,
                       const StopPredicate& stop,
                       std::vector<Chromosome>* final_population) const {
  EvaluatedPopulation seed;
  seed.chrom = std::move(initial);
  if (final_population == nullptr) {
    return run_seeded(problem, std::move(seed), rng, stop, nullptr);
  }
  EvaluatedPopulation out;
  GaResult r = run_seeded(problem, std::move(seed), rng, stop, &out);
  *final_population = std::move(out.chrom);
  return r;
}

GaResult GaEngine::run_seeded(const GaProblem& problem,
                              EvaluatedPopulation initial, util::Rng& rng,
                              const StopPredicate& stop,
                              EvaluatedPopulation* final_population) const {
  if (initial.chrom.empty()) {
    throw std::invalid_argument("GaEngine::run: empty initial population");
  }
  const std::size_t P = cfg_.population;
  // Pad/truncate to the configured population size by cycling the seeds,
  // installing any cached evaluations instead of dirtying the slot.
  PopulationBuffer pop(P);
  const std::size_t n = initial.chrom.size();
  for (std::size_t i = 0; i < P; ++i) {
    const std::size_t src = i % n;
    pop.chrom[i] = initial.chrom[src];
    if (src < initial.cached.size() && initial.cached[src] != 0 &&
        src < initial.eval.size()) {
      pop.fitness[i] = initial.eval[src].fitness;
      pop.objective[i] = initial.eval[src].objective;
      pop.dirty[i] = 0;
    }
  }
  PopulationBuffer next(P);

  GaResult result;

  // One workspace for all serial evaluation/improvement; extra workspaces
  // are created lazily, one per parallel chunk, when the population is
  // large enough for pool evaluation.
  std::unique_ptr<GaProblem::Workspace> serial_ws = problem.make_workspace();
  std::vector<std::unique_ptr<GaProblem::Workspace>> chunk_ws;

  const bool use_pool =
      cfg_.parallel_evaluation && P > cfg_.parallel_eval_threshold;
  std::vector<std::size_t> dirty_idx;
  dirty_idx.reserve(P);
  std::vector<GaProblem::Evaluation> dirty_eval;
  dirty_eval.reserve(P);

  auto evaluate_all = [&] {
    // Evaluate only dirty individuals; cached entries are bit-identical
    // to a re-evaluation because evaluate() is pure. Both sweeps route
    // through evaluate_batch so problems with a vectorized population
    // path price each block at once; the default evaluate_batch is a
    // plain evaluate() loop, preserving the historical behaviour bit
    // for bit.
    dirty_idx.clear();
    for (std::size_t i = 0; i < P; ++i) {
      if (pop.dirty[i]) dirty_idx.push_back(i);
    }
    dirty_eval.resize(dirty_idx.size());
    const std::span<const Chromosome> all(pop.chrom);
    const std::span<const std::size_t> dirty(dirty_idx);
    if (use_pool && !dirty_idx.empty()) {
      util::ThreadPool& pool = util::global_pool();
      const std::size_t chunks = std::max<std::size_t>(
          1, std::min(dirty_idx.size(), pool.size()));
      while (chunk_ws.size() < chunks) {
        chunk_ws.push_back(problem.make_workspace());
      }
      const std::size_t per = (dirty_idx.size() + chunks - 1) / chunks;
      pool.parallel_for(0, chunks, [&](std::size_t c) {
        const std::size_t lo = c * per;
        const std::size_t hi = std::min(lo + per, dirty_idx.size());
        if (lo >= hi) return;
        problem.evaluate_batch(all, dirty.subspan(lo, hi - lo),
                               chunk_ws[c].get(), dirty_eval.data() + lo);
      });
    } else if (!dirty_idx.empty()) {
      problem.evaluate_batch(all, dirty, serial_ws.get(), dirty_eval.data());
    }
    for (std::size_t k = 0; k < dirty_idx.size(); ++k) {
      const std::size_t i = dirty_idx[k];
      pop.fitness[i] = dirty_eval[k].fitness;
      pop.objective[i] = dirty_eval[k].objective;
      pop.dirty[i] = 0;
    }
    result.evaluations += dirty_idx.size();
    // Best-so-far reduction stays serial and in index order so ties keep
    // the same chromosome regardless of thread count.
    for (std::size_t i = 0; i < P; ++i) {
      if (pop.objective[i] < result.best_objective) {
        result.best_objective = pop.objective[i];
        result.best_fitness = pop.fitness[i];
        result.best = pop.chrom[i];
      }
    }
  };

  // Diversity sampling draws from a derived stream so that enabling
  // statistics cannot perturb the evolution's own randomness.
  util::Rng stats_rng = rng.split(0x57A7);
  auto record_stats = [&](std::size_t gen) {
    if (!cfg_.record_stats) return;
    result.stats_history.push_back(summarize_generation(
        gen, pop.chrom, pop.fitness, pop.objective, cfg_.diversity_pairs,
        stats_rng));
  };

  evaluate_all();
  if (cfg_.record_history) {
    result.objective_history.reserve(cfg_.max_generations + 1);
    result.objective_history.push_back(result.best_objective);
  }
  record_stats(0);

  std::vector<std::size_t> parents;
  parents.reserve(P);

  std::size_t stall = 0;
  for (std::size_t gen = 0; gen < cfg_.max_generations; ++gen) {
    if (cfg_.target_objective > 0.0 &&
        result.best_objective <= cfg_.target_objective) {
      break;
    }
    if (cfg_.stall_generations > 0 && stall >= cfg_.stall_generations) break;
    if (stop && stop(gen, result.best_objective)) break;
    const double best_before = result.best_objective;

    // --- selection: breed the next generation from fitness weights ------
    selection_.select_into(pop.fitness, P, rng, parents);
    for (std::size_t i = 0; i + 1 < parents.size(); i += 2) {
      const std::size_t pa = parents[i];
      const std::size_t pb = parents[i + 1];
      if (rng.bernoulli(cfg_.crossover_rate)) {
        crossover_.apply_into(pop.chrom[pa], pop.chrom[pb], next.chrom[i],
                              next.chrom[i + 1], rng);
        next.dirty[i] = 1;
        next.dirty[i + 1] = 1;
      } else {
        // Survivors keep their parents' cached evaluations.
        next.copy_from(i, pop, pa);
        next.copy_from(i + 1, pop, pb);
      }
    }
    if ((parents.size() & 1u) != 0) {
      next.copy_from(P - 1, pop, parents.back());  // odd population size
    }

    // --- random mutation -------------------------------------------------
    for (std::size_t m = 0; m < cfg_.mutants_per_generation; ++m) {
      const std::size_t victim = rng.index(P);
      mutation_.apply(next.chrom[victim], rng);
      next.dirty[victim] = 1;
    }

    // --- local improvement (re-balancing heuristic) ----------------------
    // Always serial: improve() consumes the evolution's RNG stream.
    // A pass that fully prices the chromosome may publish that evaluation
    // through the workspace channel; the engine installs it (the contract
    // guarantees bit-identity with evaluate()) so improved individuals
    // skip the evaluation sweep entirely. A captured evaluation is
    // discarded if a later pass changes the chromosome without supplying.
    if (cfg_.improvement_passes > 0) {
      GaProblem::Workspace* iws = serial_ws.get();
      for (std::size_t i = 0; i < P; ++i) {
        bool changed_any = false;
        bool have = false;
        GaProblem::Evaluation supplied;
        for (std::size_t r = 0; r < cfg_.improvement_passes; ++r) {
          if (iws != nullptr) iws->has_improve_evaluation = false;
          const bool changed =
              problem.improve(next.chrom[i], rng, iws);
          changed_any |= changed;
          if (iws != nullptr && iws->has_improve_evaluation) {
            have = true;
            supplied = iws->improve_evaluation;
          } else if (changed) {
            have = false;
          }
        }
        if (have) {
          next.fitness[i] = supplied.fitness;
          next.objective[i] = supplied.objective;
          next.dirty[i] = 0;
        } else if (changed_any) {
          next.dirty[i] = 1;
        }
      }
    }

    // --- elitism ----------------------------------------------------------
    if (cfg_.elitism && !result.best.empty()) {
      // Replace the first slot with the incumbent best; cheap and keeps
      // the population size fixed. Its evaluation is already cached.
      next.chrom[0].assign(result.best.begin(), result.best.end());
      next.fitness[0] = result.best_fitness;
      next.objective[0] = result.best_objective;
      next.dirty[0] = 0;
    }

    std::swap(pop, next);
    evaluate_all();
    ++result.generations;
    if (result.best_objective < best_before) {
      stall = 0;
    } else {
      ++stall;
    }
    if (cfg_.record_history) {
      result.objective_history.push_back(result.best_objective);
    }
    record_stats(result.generations);
  }
  if (final_population != nullptr) {
    // Every slot is clean here (evaluate_all is the last act of each
    // generation), so the export carries a full evaluation cache.
    final_population->eval.resize(P);
    final_population->cached.assign(P, 1);
    for (std::size_t i = 0; i < P; ++i) {
      final_population->eval[i] = {pop.fitness[i], pop.objective[i]};
    }
    final_population->chrom = std::move(pop.chrom);
  }
  return result;
}

}  // namespace gasched::ga
