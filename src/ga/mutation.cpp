#include "ga/mutation.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::ga {

SwapMutation::SwapMutation(std::size_t swaps) : swaps_(swaps) {
  if (swaps == 0) throw std::invalid_argument("SwapMutation: swaps >= 1");
}

std::string SwapMutation::name() const {
  return swaps_ == 1 ? "swap" : "swap" + std::to_string(swaps_);
}

void SwapMutation::apply(Chromosome& c, util::Rng& rng) const {
  if (c.size() < 2) return;
  for (std::size_t s = 0; s < swaps_; ++s) {
    const std::size_t i = rng.index(c.size());
    const std::size_t j = rng.index(c.size());
    std::swap(c[i], c[j]);
  }
}

void InsertionMutation::apply(Chromosome& c, util::Rng& rng) const {
  if (c.size() < 2) return;
  const std::size_t from = rng.index(c.size());
  const std::size_t to = rng.index(c.size());
  if (from == to) return;
  const Gene g = c[from];
  c.erase(c.begin() + static_cast<std::ptrdiff_t>(from));
  c.insert(c.begin() + static_cast<std::ptrdiff_t>(to), g);
}

void InversionMutation::apply(Chromosome& c, util::Rng& rng) const {
  if (c.size() < 2) return;
  std::size_t lo = rng.index(c.size());
  std::size_t hi = rng.index(c.size());
  if (lo > hi) std::swap(lo, hi);
  std::reverse(c.begin() + static_cast<std::ptrdiff_t>(lo),
               c.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
}

void ScrambleMutation::apply(Chromosome& c, util::Rng& rng) const {
  if (c.size() < 2) return;
  std::size_t lo = rng.index(c.size());
  std::size_t hi = rng.index(c.size());
  if (lo > hi) std::swap(lo, hi);
  for (std::size_t i = hi; i > lo; --i) {
    const std::size_t j = lo + rng.index(i - lo + 1);
    std::swap(c[i], c[j]);
  }
}

}  // namespace gasched::ga
