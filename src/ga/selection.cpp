#include "ga/selection.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gasched::ga {

namespace {

/// Per-thread selection scratch (prefix sums, rank order/weights), so the
/// per-generation draw is allocation-free once warmed up.
struct SelectionScratch {
  std::vector<double> prefix;
  std::vector<double> weight;
  std::vector<std::size_t> order;
};

SelectionScratch& sel_scratch() {
  thread_local SelectionScratch s;
  return s;
}

/// Prefix sums of fitness; returns total. All-zero totals are handled by
/// callers falling back to uniform selection.
double prefix_sums(std::span<const double> fitness, std::vector<double>& out) {
  out.resize(fitness.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    acc += std::max(fitness[i], 0.0);
    out[i] = acc;
  }
  return acc;
}

std::size_t locate(const std::vector<double>& prefix, double target) {
  const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - prefix.begin(),
                               static_cast<std::ptrdiff_t>(prefix.size()) - 1));
}

/// Shared roulette-wheel core used by roulette and rank selection.
void roulette_into(std::span<const double> fitness, std::size_t count,
                   util::Rng& rng, std::vector<std::size_t>& out) {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  auto& prefix = sel_scratch().prefix;
  const double total = prefix_sums(fitness, prefix);
  out.clear();
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (total <= 0.0) {
      out.push_back(rng.index(fitness.size()));
    } else {
      out.push_back(locate(prefix, rng.uniform(0.0, total)));
    }
  }
}

}  // namespace

std::vector<std::size_t> RouletteSelection::select(
    std::span<const double> fitness, std::size_t count, util::Rng& rng) const {
  std::vector<std::size_t> out;
  select_into(fitness, count, rng, out);
  return out;
}

void RouletteSelection::select_into(std::span<const double> fitness,
                                    std::size_t count, util::Rng& rng,
                                    std::vector<std::size_t>& out) const {
  roulette_into(fitness, count, rng, out);
}

TournamentSelection::TournamentSelection(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TournamentSelection: k >= 1");
}

std::string TournamentSelection::name() const {
  return "tournament" + std::to_string(k_);
}

std::vector<std::size_t> TournamentSelection::select(
    std::span<const double> fitness, std::size_t count, util::Rng& rng) const {
  std::vector<std::size_t> out;
  select_into(fitness, count, rng, out);
  return out;
}

void TournamentSelection::select_into(std::span<const double> fitness,
                                      std::size_t count, util::Rng& rng,
                                      std::vector<std::size_t>& out) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  out.clear();
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t best = rng.index(fitness.size());
    for (std::size_t t = 1; t < k_; ++t) {
      const std::size_t cand = rng.index(fitness.size());
      if (fitness[cand] > fitness[best]) best = cand;
    }
    out.push_back(best);
  }
}

std::vector<std::size_t> RankSelection::select(std::span<const double> fitness,
                                               std::size_t count,
                                               util::Rng& rng) const {
  std::vector<std::size_t> out;
  select_into(fitness, count, rng, out);
  return out;
}

void RankSelection::select_into(std::span<const double> fitness,
                                std::size_t count, util::Rng& rng,
                                std::vector<std::size_t>& out) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  const std::size_t n = fitness.size();
  auto& sc = sel_scratch();
  sc.order.resize(n);
  std::iota(sc.order.begin(), sc.order.end(), std::size_t{0});
  std::sort(sc.order.begin(), sc.order.end(),
            [&](std::size_t a, std::size_t b) {
              return fitness[a] < fitness[b];
            });
  // rank[i] in [1, n]; selection weight = rank.
  sc.weight.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    sc.weight[sc.order[r]] = static_cast<double>(r + 1);
  }
  roulette_into(sc.weight, count, rng, out);
}

std::vector<std::size_t> SusSelection::select(std::span<const double> fitness,
                                              std::size_t count,
                                              util::Rng& rng) const {
  std::vector<std::size_t> out;
  select_into(fitness, count, rng, out);
  return out;
}

void SusSelection::select_into(std::span<const double> fitness,
                               std::size_t count, util::Rng& rng,
                               std::vector<std::size_t>& out) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  auto& prefix = sel_scratch().prefix;
  const double total = prefix_sums(fitness, prefix);
  out.clear();
  out.reserve(count);
  if (total <= 0.0 || count == 0) {
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(rng.index(fitness.size()));
    }
    return;
  }
  const double step = total / static_cast<double>(count);
  double pointer = rng.uniform(0.0, step);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(locate(prefix, pointer));
    pointer += step;
  }
}

}  // namespace gasched::ga
