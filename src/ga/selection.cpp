#include "ga/selection.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gasched::ga {

namespace {

/// Prefix sums of fitness; returns total. All-zero totals are handled by
/// callers falling back to uniform selection.
double prefix_sums(std::span<const double> fitness, std::vector<double>& out) {
  out.resize(fitness.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    acc += std::max(fitness[i], 0.0);
    out[i] = acc;
  }
  return acc;
}

std::size_t locate(const std::vector<double>& prefix, double target) {
  const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - prefix.begin(),
                               static_cast<std::ptrdiff_t>(prefix.size()) - 1));
}

}  // namespace

std::vector<std::size_t> RouletteSelection::select(
    std::span<const double> fitness, std::size_t count, util::Rng& rng) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  std::vector<double> prefix;
  const double total = prefix_sums(fitness, prefix);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (total <= 0.0) {
      out.push_back(rng.index(fitness.size()));
    } else {
      out.push_back(locate(prefix, rng.uniform(0.0, total)));
    }
  }
  return out;
}

TournamentSelection::TournamentSelection(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TournamentSelection: k >= 1");
}

std::string TournamentSelection::name() const {
  return "tournament" + std::to_string(k_);
}

std::vector<std::size_t> TournamentSelection::select(
    std::span<const double> fitness, std::size_t count, util::Rng& rng) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t best = rng.index(fitness.size());
    for (std::size_t t = 1; t < k_; ++t) {
      const std::size_t cand = rng.index(fitness.size());
      if (fitness[cand] > fitness[best]) best = cand;
    }
    out.push_back(best);
  }
  return out;
}

std::vector<std::size_t> RankSelection::select(std::span<const double> fitness,
                                               std::size_t count,
                                               util::Rng& rng) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  const std::size_t n = fitness.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fitness[a] < fitness[b];
  });
  // rank[i] in [1, n]; selection weight = rank.
  std::vector<double> weight(n);
  for (std::size_t r = 0; r < n; ++r) {
    weight[order[r]] = static_cast<double>(r + 1);
  }
  RouletteSelection roulette;
  return roulette.select(weight, count, rng);
}

std::vector<std::size_t> SusSelection::select(std::span<const double> fitness,
                                              std::size_t count,
                                              util::Rng& rng) const {
  if (fitness.empty()) throw std::invalid_argument("select: empty population");
  std::vector<double> prefix;
  const double total = prefix_sums(fitness, prefix);
  std::vector<std::size_t> out;
  out.reserve(count);
  if (total <= 0.0 || count == 0) {
    for (std::size_t i = 0; i < count; ++i) out.push_back(rng.index(fitness.size()));
    return out;
  }
  const double step = total / static_cast<double>(count);
  double pointer = rng.uniform(0.0, step);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(locate(prefix, pointer));
    pointer += step;
  }
  return out;
}

}  // namespace gasched::ga
